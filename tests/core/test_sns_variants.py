"""Algorithm-specific tests for the five SliceNStitch variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.mttkrp import mttkrp, mttkrp_row
from repro.core.base import SNSConfig
from repro.core.normalization import normalize_columns
from repro.core.registry import create_algorithm
from repro.core.sns_mat import SNSMat
from repro.core.sns_rnd import SNSRnd
from repro.core.sns_rnd_plus import SNSRndPlus
from repro.core.sns_vec import SNSVec
from repro.core.sns_vec_plus import SNSVecPlus
from repro.stream.processor import ContinuousStreamProcessor
from repro.tensor.products import hadamard_all


def first_events(processor, count):
    return list(processor.events(max_events=count))


class TestSNSMat:
    def test_update_equals_one_als_sweep(
        self, small_stream, small_window_config, small_initial_factors
    ):
        """One SNS_MAT update reproduces Algorithm 2 computed by hand."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = SNSMat(SNSConfig(rank=4, regularization=0.0))
        model.initialize(processor.window, small_initial_factors)
        # Hand-computed reference starting from the same normalised factors.
        factors = [factor.copy() for factor in model.factors]
        (event, delta), = first_events(processor, 1)
        tensor = processor.window.tensor
        expected_weights = None
        for mode in range(3):
            grams = [f.T @ f for f in factors]
            hadamard = hadamard_all([g for m, g in enumerate(grams) if m != mode])
            updated = mttkrp(tensor, factors, mode) @ np.linalg.pinv(hadamard)
            factors[mode], expected_weights = normalize_columns(updated)
        model.update(delta)
        for maintained, expected in zip(model.factors, factors):
            np.testing.assert_allclose(maintained, expected, atol=1e-7)
        np.testing.assert_allclose(model.weights, expected_weights, atol=1e-7)

    def test_columns_stay_normalised(
        self, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = SNSMat(SNSConfig(rank=4))
        model.initialize(processor.window, small_initial_factors)
        for _, delta in processor.events(max_events=20):
            model.update(delta)
        for factor in model.factors:
            np.testing.assert_allclose(
                np.linalg.norm(factor, axis=0), np.ones(4), atol=1e-8
            )

    def test_decomposition_includes_weights(
        self, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = SNSMat(SNSConfig(rank=4))
        model.initialize(processor.window, small_initial_factors)
        # Before any update the weighted decomposition must reproduce the
        # initialisation's fitness (normalisation must not change the model).
        original_fitness = small_initial_factors.fitness(processor.window.tensor)
        assert model.fitness() == pytest.approx(original_fitness, abs=1e-8)


class TestSNSVec:
    def test_categorical_row_update_is_exact_least_squares(
        self, small_stream, small_window_config, small_initial_factors
    ):
        """Eq. (12): the updated row solves the row's least-squares problem."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = SNSVec(SNSConfig(rank=4, regularization=0.0))
        model.initialize(processor.window, small_initial_factors)
        (event, delta), = first_events(processor, 1)
        model.update(delta)
        tensor = processor.window.tensor
        # Check the row updated *last* by Algorithm 3 (the final categorical
        # mode): all other rows are already at their final values, so the
        # exact least-squares solution can be recomputed from the final state.
        mode = model.order - 2
        index = delta.categorical_indices[mode]
        grams = [f.T @ f for f in model.factors]
        hadamard = hadamard_all([g for m, g in enumerate(grams) if m != mode])
        expected = mttkrp_row(tensor, model.factors, mode, index) @ np.linalg.pinv(
            hadamard
        )
        np.testing.assert_allclose(model.factors[mode][index, :], expected, atol=1e-7)

    def test_time_row_update_uses_additive_rule(
        self, small_stream, small_window_config, small_initial_factors
    ):
        """Eq. (9): the time-mode row moves by ΔX's projection only."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = SNSVec(SNSConfig(rank=4, regularization=0.0))
        model.initialize(processor.window, small_initial_factors)
        (event, delta), = first_events(processor, 1)
        time_mode = model.time_mode
        before = {
            index: model.factors[time_mode][index, :].copy()
            for index in delta.time_indices
        }
        hadamard_before = hadamard_all(
            [g for m, g in enumerate(model.grams) if m != time_mode]
        )
        model.update(delta)
        # Reconstruct the expected additive update for the first time row,
        # which is updated before any other row changes.
        first_index = delta.time_indices[0]
        delta_row = np.zeros(4)
        for coordinate, value in delta.entries:
            if coordinate[time_mode] != first_index:
                continue
            product = np.ones(4)
            for mode in range(time_mode):
                product *= small_initial_factors.absorb_weights().factors[mode][
                    coordinate[mode], :
                ]
            delta_row += value * product
        expected = before[first_index] + delta_row @ np.linalg.pinv(hadamard_before)
        np.testing.assert_allclose(
            model.factors[time_mode][first_index, :], expected, atol=1e-7
        )


class TestSNSRnd:
    def test_prev_grams_refresh_each_event(
        self, small_stream, small_window_config, small_initial_factors
    ):
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = SNSRnd(SNSConfig(rank=4, theta=3, seed=0))
        model.initialize(processor.window, small_initial_factors)
        for _, delta in processor.events(max_events=25):
            factors_before = [factor.copy() for factor in model.factors]
            model.update(delta)
            # Eq. (17) invariant: prev_grams == A_prev' A_new for every mode.
            for mode in range(3):
                expected = factors_before[mode].T @ model.factors[mode]
                np.testing.assert_allclose(
                    model.prev_grams[mode], expected, atol=1e-7
                )

    def test_large_theta_matches_exact_row_rule(
        self, small_stream, small_window_config, small_initial_factors
    ):
        """With θ >= every row degree the sampled path is never taken."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        exact = SNSRnd(SNSConfig(rank=4, theta=10_000, seed=0))
        exact.initialize(processor.window, small_initial_factors)
        (event, delta), = first_events(processor, 1)
        exact.update(delta)
        tensor = processor.window.tensor
        # Only the last-updated row can be recomputed from the final factors
        # (earlier rows were solved against factors that changed afterwards).
        mode, index = exact._affected_rows(delta)[-1]
        grams = [f.T @ f for f in exact.factors]
        hadamard = hadamard_all([g for m, g in enumerate(grams) if m != mode])
        expected = mttkrp_row(tensor, exact.factors, mode, index) @ np.linalg.pinv(
            hadamard
        )
        np.testing.assert_allclose(
            exact.factors[mode][index, :], expected, atol=1e-6
        )


class TestClipping:
    @pytest.mark.parametrize("algorithm_class", [SNSVecPlus, SNSRndPlus])
    def test_entries_never_exceed_eta(
        self,
        algorithm_class,
        small_stream,
        small_window_config,
        small_initial_factors,
    ):
        eta = 0.6
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = algorithm_class(SNSConfig(rank=4, theta=4, eta=eta, seed=0))
        model.initialize(processor.window, small_initial_factors)
        touched: set[tuple[int, int]] = set()
        for _, delta in processor.events(max_events=200):
            model.update(delta)
            touched |= set(model._affected_rows(delta))
        for mode, index in touched:
            assert np.all(np.abs(model.factors[mode][index, :]) <= eta + 1e-12)

    @pytest.mark.parametrize("name", ["sns_vec_plus", "sns_rnd_plus"])
    def test_large_eta_behaves_like_unclipped(self, name, small_stream,
                                              small_window_config,
                                              small_initial_factors):
        """With a huge η the stable variants still track the window sensibly."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        model = create_algorithm(name, SNSConfig(rank=4, theta=5, eta=1e9, seed=0))
        model.initialize(processor.window, small_initial_factors)
        for _, delta in processor.events(max_events=150):
            model.update(delta)
        assert np.isfinite(model.fitness())
        assert model.fitness() > 0.0


class TestRegistryIntegration:
    def test_every_registered_algorithm_has_matching_name(self):
        from repro.core.registry import ALGORITHMS

        for name, algorithm_class in ALGORITHMS.items():
            assert algorithm_class.name == name
