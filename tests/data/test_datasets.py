"""Unit tests for dataset metadata (Table II / Table III equivalents)."""

from __future__ import annotations

import pytest

from repro.data.datasets import DATASETS, PAPER_DATASETS, get_dataset_spec
from repro.exceptions import ConfigurationError

EXPECTED_NAMES = {"divvy_bikes", "chicago_crime", "nyc_taxi", "ride_austin"}


class TestPaperMetadata:
    def test_all_four_paper_datasets_present(self):
        assert set(PAPER_DATASETS) == EXPECTED_NAMES

    def test_paper_shapes_match_table_ii(self):
        assert PAPER_DATASETS["divvy_bikes"].shape == (673, 673, 525_594)
        assert PAPER_DATASETS["chicago_crime"].shape == (77, 32, 148_464)
        assert PAPER_DATASETS["nyc_taxi"].shape == (265, 265, 5_184_000)
        assert PAPER_DATASETS["ride_austin"].shape == (219, 219, 24, 285_136)

    def test_paper_densities_match_table_ii(self):
        assert PAPER_DATASETS["nyc_taxi"].density == pytest.approx(2.318e-4)
        assert PAPER_DATASETS["ride_austin"].density == pytest.approx(2.739e-6)


class TestSyntheticSpecs:
    def test_all_four_specs_present(self):
        assert set(DATASETS) == EXPECTED_NAMES

    def test_table_iii_defaults(self):
        for name, spec in DATASETS.items():
            assert spec.rank == 20
            assert spec.window_length == 10
            assert spec.eta == 1000.0
        assert DATASETS["ride_austin"].theta == 50  # the one exception in Table III
        assert DATASETS["nyc_taxi"].theta == 20

    def test_ride_austin_is_four_mode(self):
        spec = DATASETS["ride_austin"]
        assert spec.order == 4
        assert len(spec.mode_sizes) == 3
        assert spec.window_shape == (*spec.mode_sizes, 10)

    def test_get_dataset_spec(self):
        assert get_dataset_spec("nyc_taxi").name == "nyc_taxi"
        with pytest.raises(ConfigurationError):
            get_dataset_spec("mnist")
