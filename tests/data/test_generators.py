"""Unit tests for the synthetic stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import get_dataset_spec
from repro.data.generators import (
    SyntheticStreamConfig,
    generate_dataset,
    generate_stream,
    generate_synthetic_stream,
)
from repro.exceptions import DataGenerationError
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode_sizes": ()},
            {"mode_sizes": (0, 3)},
            {"mode_sizes": (3,), "rank": 0},
            {"mode_sizes": (3,), "n_records": 0},
            {"mode_sizes": (3,), "period": 0.0},
            {"mode_sizes": (3,), "background_rate": 1.5},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(DataGenerationError):
            SyntheticStreamConfig(**kwargs)

    def test_time_span(self):
        config = SyntheticStreamConfig(
            mode_sizes=(5, 5), n_records=1000, period=10.0, records_per_period=100.0
        )
        assert config.time_span == pytest.approx(100.0)


class TestGenerateStream:
    def test_basic_shape_and_bounds(self):
        stream = generate_synthetic_stream(
            mode_sizes=(6, 4), rank=2, n_records=300, period=10.0,
            records_per_period=30.0, seed=1,
        )
        assert len(stream) == 300
        assert stream.mode_sizes == (6, 4)
        for record in stream:
            assert 0 <= record.indices[0] < 6
            assert 0 <= record.indices[1] < 4
            assert record.value > 0

    def test_records_are_chronological(self):
        stream = generate_synthetic_stream((5, 5), n_records=200, seed=2)
        times = [record.time for record in stream]
        assert times == sorted(times)

    def test_deterministic_with_seed(self):
        a = generate_synthetic_stream((5, 5), n_records=100, seed=9)
        b = generate_synthetic_stream((5, 5), n_records=100, seed=9)
        assert a.records == b.records

    def test_different_seeds_differ(self):
        a = generate_synthetic_stream((5, 5), n_records=100, seed=1)
        b = generate_synthetic_stream((5, 5), n_records=100, seed=2)
        assert a.records != b.records

    def test_low_rank_structure_is_present(self):
        """A latent-pattern stream is easier to fit at the truth rank than noise."""
        from repro.als.als import decompose

        stream = generate_synthetic_stream(
            (15, 15), rank=2, n_records=4000, period=20.0,
            records_per_period=400.0, seed=3, background_rate=0.0,
        )
        config = WindowConfig(mode_sizes=(15, 15), window_length=4, period=20.0)
        window = ContinuousStreamProcessor(stream, config).window.tensor
        fitness = decompose(window, rank=4, n_iterations=15, seed=0).fitness
        assert fitness > 0.35  # clearly better than an unstructured random stream

    def test_mode_names_forwarded(self):
        config = SyntheticStreamConfig(mode_sizes=(4, 4), n_records=20)
        stream = generate_stream(config, mode_names=("a", "b"))
        assert stream.mode_names == ("a", "b")


class TestGenerateDataset:
    def test_scale_thins_but_keeps_span(self):
        full, spec = generate_dataset("divvy_bikes", scale=1.0)
        thin, _ = generate_dataset("divvy_bikes", scale=0.25)
        assert len(thin) == pytest.approx(len(full) * 0.25, rel=0.05)
        assert thin.duration == pytest.approx(full.duration, rel=0.1)

    def test_spec_matches_registry(self):
        stream, spec = generate_dataset("ride_austin", scale=0.1)
        assert spec == get_dataset_spec("ride_austin")
        assert stream.mode_sizes == spec.mode_sizes

    def test_invalid_scale_rejected(self):
        with pytest.raises(DataGenerationError):
            generate_dataset("nyc_taxi", scale=0.0)

    def test_seed_override(self):
        a, _ = generate_dataset("nyc_taxi", scale=0.05, seed=1)
        b, _ = generate_dataset("nyc_taxi", scale=0.05, seed=2)
        assert a.records != b.records
