"""Unit tests for :mod:`repro.data.loaders`."""

from __future__ import annotations

from repro.data.generators import generate_synthetic_stream
from repro.data.loaders import load_stream_csv


class TestLoadStreamCsv:
    def test_roundtrip_through_csv(self, tmp_path):
        stream = generate_synthetic_stream((5, 4), n_records=50, seed=0)
        path = tmp_path / "events.csv"
        stream.to_csv(path)
        loaded = load_stream_csv(path, mode_sizes=(5, 4))
        assert len(loaded) == len(stream)
        assert loaded.records == stream.records

    def test_loader_sorts_unsorted_files(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text("a,b,value,time\n1,1,2.0,30\n0,0,1.0,10\n")
        loaded = load_stream_csv(path)
        assert [record.time for record in loaded] == [10.0, 30.0]
