"""Unit tests for experiment configuration and text reporting."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.config import (
    DEFAULT_CONTINUOUS_METHODS,
    DEFAULT_PERIODIC_METHODS,
    ExperimentSettings,
    default_settings,
    table_iii_rows,
)
from repro.experiments.reporting import format_series, format_table


class TestExperimentSettings:
    def test_defaults(self):
        settings = ExperimentSettings()
        assert settings.dataset == "nyc_taxi"
        assert settings.fitness_every >= 1
        assert settings.spec.rank == 20
        assert settings.checkpoint_dir is None
        assert settings.checkpoint_events is None
        assert settings.resume is False

    def test_checkpoint_every_is_a_deprecated_alias_of_fitness_every(self):
        settings = ExperimentSettings()
        with pytest.warns(DeprecationWarning, match="fitness_every"):
            aliased = settings.checkpoint_every
        assert aliased == settings.fitness_every

    def test_default_settings_overrides(self):
        settings = default_settings("chicago_crime", max_events=100)
        assert settings.dataset == "chicago_crime"
        assert settings.max_events == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"dataset": "imagenet"},
            {"scale": 0.0},
            {"max_events": 0},
            {"n_checkpoints": 0},
            {"als_iterations": 0},
            {"checkpoint_events": 0, "checkpoint_dir": "/tmp/x"},
            {"checkpoint_events": 100},  # requires checkpoint_dir
            {"resume": True},  # requires checkpoint_dir
        ],
    )
    def test_invalid_settings_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(**kwargs)

    def test_default_method_lists_are_disjoint(self):
        assert not set(DEFAULT_CONTINUOUS_METHODS) & set(DEFAULT_PERIODIC_METHODS)

    def test_table_iii_rows_cover_all_datasets(self):
        rows = table_iii_rows()
        assert len(rows) == 4
        assert {row[0] for row in rows} == {
            "divvy_bikes",
            "chicago_crime",
            "nyc_taxi",
            "ride_austin",
        }


class TestReporting:
    def test_format_table_alignment_and_title(self):
        text = format_table(
            ("name", "value"), [("abc", 1.5), ("x", 123456.0)], title="My table"
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        assert "abc" in lines[3]

    def test_format_table_nan_and_scientific(self):
        text = format_table(("v",), [(float("nan"),), (1e-6,)])
        assert "nan" in text
        assert "e-06" in text

    def test_format_series(self):
        text = format_series("SNS", [0.0, 10.0], [0.5, 0.75], unit="fitness")
        assert text.startswith("SNS [fitness]:")
        assert "(10, 0.750)" in text
