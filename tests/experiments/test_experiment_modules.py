"""Smoke-level integration tests: every figure experiment runs end to end.

Each paper experiment is exercised at a deliberately tiny scale; the goal is
to validate result structure, formatting, and basic sanity of the numbers —
the benchmarks produce the full-size reproductions.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments.anomaly_experiment import (
    format_anomaly_experiment,
    run_anomaly_experiment,
)
from repro.experiments.config import ExperimentSettings
from repro.experiments.eta_sweep import format_eta_sweep, run_eta_sweep
from repro.experiments.fitness_over_time import (
    format_fitness_over_time,
    run_fitness_over_time,
)
from repro.experiments.granularity import format_granularity, run_granularity
from repro.experiments.scalability import format_scalability, run_scalability
from repro.experiments.speed_fitness import format_speed_fitness, run_speed_fitness
from repro.experiments.theta_sweep import format_theta_sweep, run_theta_sweep

TINY = ExperimentSettings(
    dataset="chicago_crime", scale=0.08, max_events=200, n_checkpoints=4,
    als_iterations=3, seed=0,
)


class TestGranularity:
    def test_runs_and_reports(self):
        result = run_granularity(TINY, divisors=(4, 1), als_iterations=3)
        conventional = result.conventional()
        continuous = result.continuous()
        assert len(conventional) == 2
        # Finer granularity -> strictly more parameters.
        assert conventional[0].n_parameters > conventional[1].n_parameters
        # Continuous CPD keeps the coarse parameter count.
        assert continuous.n_parameters == conventional[-1].n_parameters
        text = format_granularity(result)
        assert "Fig. 1" in text and "per event" in text


class TestFitnessOverTime:
    def test_runs_with_subset_of_methods(self):
        result = run_fitness_over_time(TINY, methods=["sns_vec_plus", "als"])
        times, series = result.series("sns_vec_plus")
        assert len(times) == len(series) > 0
        assert all(np.isfinite(v) for v in series)
        text = format_fitness_over_time(result)
        assert "relative fitness" in text
        assert "SNS+_VEC" in text


class TestSpeedFitness:
    def test_single_dataset_roster(self):
        result = run_speed_fitness(
            datasets=("chicago_crime",),
            methods=["sns_rnd_plus", "als"],
            settings_overrides={"scale": 0.08, "max_events": 200,
                                "n_checkpoints": 4, "als_iterations": 3},
        )
        rows = result.rows()
        assert len(rows) == 2
        by_method = {row[1]: row for row in rows}
        # The continuous method always updates; at this tiny scale the ALS
        # baseline may not have crossed a period boundary yet (time 0.0).
        assert by_method["SNS+_RND"][2] > 0
        assert all(row[2] >= 0 for row in rows)
        speedup = result.speedup_over_fastest_baseline("chicago_crime", "sns_rnd_plus")
        assert speedup > 0 or math.isnan(speedup)
        assert "Fig. 5" in format_speed_fitness(result)


class TestScalability:
    def test_total_time_grows_with_events(self):
        result = run_scalability(
            TINY, methods=("sns_vec_plus",), event_counts=(50, 150, 300)
        )
        series = result.total_seconds["sns_vec_plus"]
        assert len(series) == 3
        assert series[0] < series[-1]
        assert result.linearity("sns_vec_plus") > 0.8
        assert "Fig. 6" in format_scalability(result)


class TestThetaSweep:
    def test_runs_and_reports(self):
        result = run_theta_sweep(TINY, methods=("sns_rnd_plus",), fractions=(0.5, 2.0))
        assert len(result.thetas) == 2
        assert len(result.relative_fitness["sns_rnd_plus"]) == 2
        assert all(t > 0 for t in result.update_microseconds["sns_rnd_plus"])
        assert "Fig. 7" in format_theta_sweep(result)


class TestEtaSweep:
    def test_runs_and_reports(self):
        result = run_eta_sweep(TINY, methods=("sns_rnd_plus",), etas=(100.0, 1000.0))
        assert result.etas == [100.0, 1000.0]
        values = result.relative_fitness["sns_rnd_plus"]
        assert all(np.isfinite(v) for v in values)
        assert "Fig. 8" in format_eta_sweep(result)


class TestAnomalyExperiment:
    def test_continuous_detects_faster_than_periodic(self):
        settings = ExperimentSettings(
            dataset="chicago_crime", scale=0.12, max_events=400,
            n_checkpoints=4, als_iterations=3, seed=1,
        )
        result = run_anomaly_experiment(
            settings,
            methods=("sns_rnd_plus", "online_scp"),
            n_anomalies=8,
            replay_periods=3,
        )
        continuous = result.methods["sns_rnd_plus"]
        periodic = result.methods["online_scp"]
        assert 0.0 <= continuous.precision_at_k <= 1.0
        assert continuous.precision_at_k >= 0.5  # anomalies are 5x the max value
        # The continuous method reacts essentially instantly; the periodic one
        # must wait for a boundary.
        assert continuous.mean_detection_delay == pytest.approx(0.0, abs=1e-6)
        if not math.isnan(periodic.mean_detection_delay):
            assert periodic.mean_detection_delay > 0.0
        assert "Fig. 9" in format_anomaly_experiment(result)
