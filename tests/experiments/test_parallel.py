"""Parallel experiment fan-out: equivalence, crash recovery, scheduler edges.

The contract under test: ``n_workers > 1`` changes *wall-clock shape only* —
every method replay is a deterministic function of the shared snapshot and
the task parameters, so fitness series, final factors, and event counts are
identical to the sequential run; and a worker killed mid-task is resumed
from its crash-recovery checkpoint, not restarted.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, WorkerError
from repro.experiments.config import ExperimentSettings
from repro.experiments.eta_sweep import run_eta_sweep
from repro.experiments.granularity import run_granularity
from repro.experiments.parallel import (
    FAULT_ENV,
    RESULT_SUFFIX,
    ExperimentTask,
    execute_task,
    method_result_from_payload,
    method_task,
    run_tasks,
    run_tasks_over_snapshot,
    task_fingerprint,
)
from repro.experiments.runner import prepare_experiment, run_experiment, run_method
from repro.experiments.scalability import run_scalability
from repro.experiments.theta_sweep import run_theta_sweep
from repro.stream.checkpoint import (
    ExperimentSnapshot,
    restore_run,
    save_experiment_snapshot,
)

#: Small but non-trivial shared workload (a few hundred events, real window).
SETTINGS = ExperimentSettings(dataset="nyc_taxi", scale=0.1, max_events=120, n_checkpoints=4)

#: All five SliceNStitch variants plus two periodic baselines.
ALL_METHODS = (
    "sns_rnd_plus",
    "sns_vec_plus",
    "sns_rnd",
    "sns_vec",
    "sns_mat",
    "als",
    "online_scp",
)


@pytest.fixture(scope="module")
def prepared():
    """One shared prepared experiment for the whole module."""
    return prepare_experiment(SETTINGS)


def _assert_method_results_equal(sequential, parallel):
    assert parallel.fitness_series == sequential.fitness_series
    assert parallel.checkpoint_times == sequential.checkpoint_times
    assert parallel.final_fitness == sequential.final_fitness
    assert parallel.n_events == sequential.n_events
    assert parallel.n_updates == sequential.n_updates
    assert parallel.n_parameters == sequential.n_parameters
    assert parallel.kind == sequential.kind


class TestRunExperimentEquivalence:
    def test_all_methods_parallel_equals_sequential(self, tmp_path):
        """5 variants + 2 baselines: fitness series AND final factors match."""
        sequential = run_experiment(
            dataclasses.replace(SETTINGS, checkpoint_dir=str(tmp_path / "seq")),
            ALL_METHODS,
        )
        parallel = run_experiment(
            dataclasses.replace(
                SETTINGS, checkpoint_dir=str(tmp_path / "par"), n_workers=4
            ),
            ALL_METHODS,
        )
        assert parallel.initial_fitness == sequential.initial_fitness
        for method in ALL_METHODS:
            _assert_method_results_equal(
                sequential.methods[method], parallel.methods[method]
            )
        # Final factors: both runs checkpointed every continuous method under
        # <dir>/<method> (the shared layout); the saved models must agree
        # exactly.
        for method in ALL_METHODS:
            if sequential.methods[method].kind != "continuous":
                continue
            _, seq_model, _ = restore_run(tmp_path / "seq" / method)
            _, par_model, _ = restore_run(tmp_path / "par" / method)
            for seq_factor, par_factor in zip(seq_model.factors, par_model.factors):
                assert (np.asarray(seq_factor) == np.asarray(par_factor)).all()

    def test_batched_engine_parallel_equals_sequential(self):
        methods = ("sns_rnd_plus", "als")
        batched = dataclasses.replace(SETTINGS, batched=True)
        sequential = run_experiment(batched, methods)
        parallel = run_experiment(
            dataclasses.replace(batched, n_workers=2), methods
        )
        for method in methods:
            _assert_method_results_equal(
                sequential.methods[method], parallel.methods[method]
            )


class TestSnapshotRehydration:
    def test_rehydrated_run_matches_in_process(self, prepared, tmp_path):
        stream, spec, window_config, initial, initial_fitness = prepared
        path = tmp_path / "snapshot"
        save_experiment_snapshot(
            path, stream, window_config, initial, extra={"initial_fitness": initial_fitness}
        )
        from repro.stream.checkpoint import load_experiment_snapshot

        snapshot = load_experiment_snapshot(path)
        assert snapshot.extra == {"initial_fitness": initial_fitness}
        assert snapshot.window_config == window_config
        assert snapshot.stream.records == stream.records
        assert snapshot.stream.mode_names == stream.mode_names
        for rebuilt, original in zip(
            snapshot.initial_factors.factors, initial.factors
        ):
            assert (rebuilt == original).all()
        assert (snapshot.initial_factors.weights == initial.weights).all()
        kwargs = dict(rank=spec.rank, theta=spec.theta, eta=spec.eta,
                      max_events=80, fitness_every=20, seed=SETTINGS.seed)
        direct = run_method(
            stream, window_config, "sns_rnd", initial_factors=initial, **kwargs
        )
        rehydrated = run_method(
            snapshot.stream,
            snapshot.window_config,
            "sns_rnd",
            initial_factors=snapshot.initial_factors,
            **kwargs,
        )
        _assert_method_results_equal(direct, rehydrated)


class TestCrashRecovery:
    def test_killed_worker_task_is_resumed_not_restarted(
        self, prepared, tmp_path, monkeypatch
    ):
        stream, spec, window_config, initial, _ = prepared
        kwargs = dict(rank=spec.rank, max_events=120, fitness_every=30)
        reference = run_method(
            stream, window_config, "sns_vec_plus", initial_factors=initial, **kwargs
        )
        snapshot_path = tmp_path / "snapshot"
        save_experiment_snapshot(snapshot_path, stream, window_config, initial)
        # The fault hook kills the worker after 120/2 events on the *first*
        # attempt only; a scheduler that restarted (resume=False) instead of
        # resuming would crash again and exhaust max_task_failures=1.
        monkeypatch.setenv(FAULT_ENV, "victim:60")
        task = method_task("victim", "sns_vec_plus", **kwargs)
        payloads = run_tasks(
            [task],
            snapshot_path=snapshot_path,
            work_dir=tmp_path / "pool",
            n_workers=2,
            max_task_failures=1,
        )
        result = method_result_from_payload(payloads["victim"])
        # Per-event engine + crash on a fitness-cadence multiple: the whole
        # series (not just the final value) must match the uninterrupted run.
        _assert_method_results_equal(reference, result)
        # The task's lifetime checkpoint reflects the full resumed run.
        _, model, extra = restore_run(tmp_path / "pool" / "victim" / "sns_vec_plus")
        assert extra["n_events"] == 120
        assert model.n_updates == 120

    def test_failure_budget_exhausted_raises_and_leaves_checkpoint(
        self, prepared, tmp_path, monkeypatch
    ):
        stream, spec, window_config, initial, _ = prepared
        snapshot_path = tmp_path / "snapshot"
        save_experiment_snapshot(snapshot_path, stream, window_config, initial)
        monkeypatch.setenv(FAULT_ENV, "victim:40")
        task = method_task(
            "victim", "sns_vec", rank=spec.rank, max_events=120, fitness_every=30
        )
        with pytest.raises(WorkerError, match="victim"):
            run_tasks(
                [task],
                snapshot_path=snapshot_path,
                work_dir=tmp_path / "pool",
                n_workers=1,
                max_task_failures=0,
            )
        # The failed attempt still persisted a resumable checkpoint.
        _, model, extra = restore_run(tmp_path / "pool" / "victim" / "sns_vec")
        assert extra["n_events"] == 40
        assert model.n_updates == 40

    def test_fresh_run_ignores_stale_results_and_checkpoints(
        self, prepared, tmp_path
    ):
        # A reused work dir (say, a checkpoint_dir from an earlier experiment
        # with a different event budget) must not leak its results or
        # checkpoints into a fresh (resume=False) run.
        stream, spec, window_config, initial, _ = prepared
        snapshot_path = tmp_path / "snapshot"
        save_experiment_snapshot(snapshot_path, stream, window_config, initial)
        work_dir = tmp_path / "pool"
        task = method_task(
            "t", "sns_vec", rank=spec.rank, max_events=80, fitness_every=40
        )
        # Earlier run: different budget, leaves result + finished checkpoint.
        stale_task = method_task(
            "t", "sns_vec", rank=spec.rank, max_events=40, fitness_every=40
        )
        run_tasks(
            [stale_task],
            snapshot_path=snapshot_path,
            work_dir=work_dir,
            n_workers=1,
        )
        fresh = run_tasks(
            [task], snapshot_path=snapshot_path, work_dir=work_dir, n_workers=1
        )
        result = method_result_from_payload(fresh["t"])
        assert result.n_events == 80  # not the stale 40-event outcome
        _, model, extra = restore_run(work_dir / "t" / "sns_vec")
        assert extra["n_events"] == 80  # stale checkpoint was cleared too

    def test_resume_trusts_matching_result_files(
        self, prepared, tmp_path
    ):
        stream, spec, window_config, initial, _ = prepared
        snapshot_path = tmp_path / "snapshot"
        save_experiment_snapshot(snapshot_path, stream, window_config, initial)
        work_dir = tmp_path / "pool"
        work_dir.mkdir()
        task = method_task(
            "done", "sns_vec", rank=spec.rank, max_events=40, fitness_every=20
        )
        sentinel = {
            "task_kind": "method",
            "sentinel": True,
            "task_fingerprint": task_fingerprint(task),
        }
        (work_dir / f"done{RESULT_SUFFIX}").write_text(json.dumps(sentinel))
        payloads = run_tasks(
            [task],
            snapshot_path=snapshot_path,
            work_dir=work_dir,
            n_workers=2,
            resume=True,
        )
        # The pre-existing matching result was adopted; the task never re-ran.
        assert payloads["done"] == sentinel

    def test_resume_with_larger_budget_continues_instead_of_reusing(
        self, prepared, tmp_path
    ):
        # A finished run's result file must not satisfy a resumed run with a
        # larger max_events: the task re-executes and continues from its
        # checkpoint, exactly like a sequential resume.
        stream, spec, window_config, initial, _ = prepared
        snapshot_path = tmp_path / "snapshot"
        save_experiment_snapshot(snapshot_path, stream, window_config, initial)
        work_dir = tmp_path / "pool"
        short = method_task(
            "t", "sns_vec_plus", rank=spec.rank, max_events=60, fitness_every=30
        )
        run_tasks(
            [short], snapshot_path=snapshot_path, work_dir=work_dir, n_workers=1
        )
        longer = method_task(
            "t", "sns_vec_plus", rank=spec.rank, max_events=120, fitness_every=30
        )
        payloads = run_tasks(
            [longer],
            snapshot_path=snapshot_path,
            work_dir=work_dir,
            n_workers=1,
            resume=True,
        )
        result = method_result_from_payload(payloads["t"])
        reference = run_method(
            stream, window_config, "sns_vec_plus",
            initial_factors=initial, rank=spec.rank,
            max_events=120, fitness_every=30,
        )
        _assert_method_results_equal(reference, result)


class TestSchedulerEdges:
    def test_duplicate_task_keys_rejected(self, prepared):
        stream, spec, window_config, initial, _ = prepared
        tasks = [
            method_task("same", "sns_vec", rank=spec.rank),
            method_task("same", "sns_mat", rank=spec.rank),
        ]
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_tasks_over_snapshot(stream, window_config, initial, tasks)

    def test_invalid_keys_and_kinds_rejected(self):
        with pytest.raises(ConfigurationError, match="path-free"):
            ExperimentTask(key="a/b")
        with pytest.raises(ConfigurationError, match="path-free"):
            ExperimentTask(key="")
        with pytest.raises(ConfigurationError, match="kind"):
            ExperimentTask(key="ok", kind="nonsense")

    def test_nonpositive_workers_rejected(self, prepared):
        stream, spec, window_config, initial, _ = prepared
        task = method_task("t", "sns_vec", rank=spec.rank)
        with pytest.raises(ConfigurationError, match="n_workers"):
            run_tasks_over_snapshot(
                stream, window_config, initial, [task], n_workers=0
            )

    def test_spawn_start_method_is_supported(self, prepared, tmp_path):
        """Workers must stay spawn-safe (the distributed-replay story)."""
        stream, spec, window_config, initial, _ = prepared
        kwargs = dict(rank=spec.rank, max_events=40, fitness_every=20)
        snapshot_path = tmp_path / "snapshot"
        save_experiment_snapshot(snapshot_path, stream, window_config, initial)
        payloads = run_tasks(
            [method_task("only", "sns_vec", **kwargs)],
            snapshot_path=snapshot_path,
            work_dir=tmp_path / "pool",
            n_workers=1,
            start_method="spawn",
        )
        snapshot = ExperimentSnapshot(
            stream=stream, window_config=window_config, initial_factors=initial
        )
        in_process = execute_task(
            snapshot, method_task("only", "sns_vec", **kwargs)
        )
        spawned = payloads["only"]
        assert spawned["fitness_series"] == in_process["fitness_series"]
        assert spawned["final_fitness"] == in_process["final_fitness"]


class TestSweepFanOut:
    """Each sweep's parallel path must reproduce its sequential results."""

    def test_eta_sweep(self):
        kwargs = dict(methods=("sns_vec_plus",), etas=(100.0, 1000.0))
        small = dataclasses.replace(SETTINGS, max_events=60, n_checkpoints=3)
        sequential = run_eta_sweep(small, **kwargs)
        parallel = run_eta_sweep(
            dataclasses.replace(small, n_workers=2), **kwargs
        )
        assert parallel.etas == sequential.etas
        assert parallel.relative_fitness == sequential.relative_fitness

    def test_theta_sweep(self):
        kwargs = dict(methods=("sns_rnd",), fractions=(0.5, 1.0))
        small = dataclasses.replace(SETTINGS, max_events=60, n_checkpoints=3)
        sequential = run_theta_sweep(small, **kwargs)
        parallel = run_theta_sweep(
            dataclasses.replace(small, n_workers=2), **kwargs
        )
        assert parallel.thetas == sequential.thetas
        assert parallel.relative_fitness == sequential.relative_fitness
        # update_microseconds is wall-clock and may differ; shape must not.
        assert {
            method: len(series)
            for method, series in parallel.update_microseconds.items()
        } == {
            method: len(series)
            for method, series in sequential.update_microseconds.items()
        }

    def test_scalability(self):
        kwargs = dict(methods=("sns_vec",), event_counts=(40, 80))
        small = dataclasses.replace(SETTINGS, max_events=80)
        sequential = run_scalability(small, **kwargs)
        parallel = run_scalability(
            dataclasses.replace(small, n_workers=2), **kwargs
        )
        assert parallel.event_counts == sequential.event_counts
        assert set(parallel.total_seconds) == set(sequential.total_seconds)
        assert all(
            seconds > 0.0
            for series in parallel.total_seconds.values()
            for seconds in series
        )

    def test_granularity(self):
        kwargs = dict(divisors=(2, 1), als_iterations=3)
        small = dataclasses.replace(SETTINGS, max_events=60, n_checkpoints=3)
        sequential = run_granularity(small, **kwargs)
        parallel = run_granularity(
            dataclasses.replace(small, n_workers=2), **kwargs
        )
        for seq_point, par_point in zip(
            sequential.conventional(), parallel.conventional()
        ):
            assert par_point.update_interval == seq_point.update_interval
            assert par_point.fitness == seq_point.fitness
            assert par_point.n_parameters == seq_point.n_parameters
        assert parallel.continuous().fitness == sequential.continuous().fitness
