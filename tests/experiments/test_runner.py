"""Integration tests for the streaming experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.als import decompose
from repro.data.generators import generate_synthetic_stream
from repro.exceptions import ConfigurationError
from repro.experiments.runner import (
    ExperimentResult,
    MethodResult,
    method_kind,
    method_label,
    run_method,
)
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig


@pytest.fixture(scope="module")
def runner_setup():
    """A small shared stream / window / initial decomposition."""
    stream = generate_synthetic_stream(
        mode_sizes=(10, 9), rank=3, n_records=1200,
        period=20.0, records_per_period=60.0, seed=21,
    )
    window_config = WindowConfig(mode_sizes=(10, 9), window_length=4, period=20.0)
    processor = ContinuousStreamProcessor(stream, window_config)
    initial = decompose(processor.window.tensor, rank=5, n_iterations=8, seed=0)
    return stream, window_config, initial.decomposition, initial.fitness


class TestMethodKindAndLabel:
    def test_kinds(self):
        assert method_kind("sns_rnd_plus") == "continuous"
        assert method_kind("als") == "periodic"
        assert method_kind("necpd(10)") == "periodic"
        with pytest.raises(ConfigurationError):
            method_kind("unknown_method")

    def test_labels(self):
        assert method_label("sns_mat") == "SNS_MAT"
        assert method_label("cp_stream") == "CP-stream"


class TestRunMethod:
    def test_continuous_method_result(self, runner_setup):
        stream, window_config, initial, _ = runner_setup
        result = run_method(
            stream, window_config, "sns_vec_plus",
            initial_factors=initial, rank=5,
            max_events=300, checkpoint_every=100,
        )
        assert isinstance(result, MethodResult)
        assert result.kind == "continuous"
        assert result.n_updates == 300
        assert result.n_events == 300
        assert len(result.fitness_series) == 3
        assert result.checkpoint_times == sorted(result.checkpoint_times)
        assert result.mean_update_microseconds > 0
        assert np.isfinite(result.average_fitness)

    def test_batched_continuous_matches_sequential(self, runner_setup):
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(
            initial_factors=initial, rank=5, max_events=300, checkpoint_every=100
        )
        sequential = run_method(stream, window_config, "sns_vec_plus", **kwargs)
        batched = run_method(
            stream, window_config, "sns_vec_plus", batched=True, **kwargs
        )
        assert batched.kind == "continuous"
        assert batched.n_events == sequential.n_events
        # n_updates and mean_update_microseconds are per-event in both paths.
        assert batched.n_updates == sequential.n_updates
        assert batched.mean_update_microseconds > 0
        # The batched engine is numerically equivalent, so the final state —
        # and therefore the final fitness — must agree to float precision.
        assert batched.final_fitness == pytest.approx(
            sequential.final_fitness, rel=1e-9
        )

    def test_batched_periodic_method_runs(self, runner_setup):
        stream, window_config, initial, _ = runner_setup
        result = run_method(
            stream, window_config, "als",
            initial_factors=initial, rank=5,
            max_events=300, checkpoint_every=100, batched=True,
        )
        assert result.kind == "periodic"
        assert result.n_events == 300
        assert result.n_updates >= 1
        assert np.isfinite(result.final_fitness)
        assert result.checkpoint_times == sorted(result.checkpoint_times)
        assert result.mean_update_microseconds > 0
        assert np.isfinite(result.average_fitness)

    def test_periodic_method_result(self, runner_setup):
        stream, window_config, initial, _ = runner_setup
        result = run_method(
            stream, window_config, "als",
            initial_factors=initial, rank=5,
            max_events=600, checkpoint_every=100,
        )
        assert result.kind == "periodic"
        assert result.n_updates >= 1  # at least one boundary crossed
        assert len(result.fitness_series) == result.n_updates
        assert result.mean_update_microseconds > 0

    def test_zero_checkpoint_fallback(self, runner_setup):
        stream, window_config, initial, _ = runner_setup
        result = run_method(
            stream, window_config, "sns_vec",
            initial_factors=initial, rank=5,
            max_events=10, checkpoint_every=50,
        )
        assert len(result.fitness_series) == 1  # falls back to final fitness


class TestBaselineBoundarySemantics:
    """Both engines score periodic baselines identically (boundary-exact)."""

    @pytest.mark.parametrize("max_events", [37, 300, 600])
    def test_engines_agree_bit_for_bit(self, runner_setup, max_events):
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(
            initial_factors=initial, rank=5, max_events=max_events,
            fitness_every=100,
        )
        sequential = run_method(stream, window_config, "als", **kwargs)
        batched = run_method(stream, window_config, "als", batched=True, **kwargs)
        # Identical semantics: the same boundaries are scored over the same
        # window values.  (The grouped scatter can store entries in a
        # different order than per-event applies, so ALS's float reductions
        # round differently — values agree to float precision, structure
        # exactly.)
        assert batched.fitness_series == pytest.approx(
            sequential.fitness_series, rel=1e-9
        )
        assert batched.checkpoint_times == sequential.checkpoint_times
        assert batched.n_events == sequential.n_events
        assert batched.n_updates == sequential.n_updates
        assert batched.final_fitness == pytest.approx(
            sequential.final_fitness, rel=1e-9
        )

    def test_trailing_boundaries_scored_when_stream_exhausts(self, runner_setup):
        # Ask for far more events than the stream holds: the per-event loop
        # historically stopped scoring at the last event, silently dropping
        # every boundary at or past it; both engines must now score them.
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(
            initial_factors=initial, rank=5, max_events=10**6,
            fitness_every=10**6,
        )
        sequential = run_method(stream, window_config, "als", **kwargs)
        batched = run_method(stream, window_config, "als", batched=True, **kwargs)
        assert sequential.n_events < 10**6  # the stream really ran out
        assert sequential.checkpoint_times == batched.checkpoint_times
        # Trailing windows are nearly empty, so ALS is ill-conditioned and
        # amplifies the engines' storage-order rounding; the scored
        # boundaries (the point of this test) still agree closely.
        assert batched.fitness_series == pytest.approx(
            sequential.fitness_series, rel=1e-5, abs=1e-5
        )
        # The last scored boundary is at or past the final event: no window
        # state is left unscored when the stream ends.
        last_event_time = max(record.time for record in stream.records) + (
            window_config.window_length * window_config.period
        )
        assert sequential.checkpoint_times[-1] >= last_event_time - window_config.period

    def test_truncated_final_period_is_not_scored(self, runner_setup):
        # When max_events stops the replay mid-period, the window has not
        # reached the next boundary, so no sample may be emitted for it —
        # on either engine.
        stream, window_config, initial, _ = runner_setup
        probe = ContinuousStreamProcessor(stream, window_config)
        first_boundary = probe.start_time + window_config.period
        events_in_first_period = probe.run(end_time=first_boundary)
        max_events = events_in_first_period + 3  # a few events into period 2
        kwargs = dict(
            initial_factors=initial, rank=5, max_events=max_events,
            fitness_every=10**6,
        )
        for batched in (False, True):
            result = run_method(
                stream, window_config, "als", batched=batched, **kwargs
            )
            assert result.n_events == max_events
            assert result.n_updates == 1
            assert result.checkpoint_times == [pytest.approx(first_boundary)]

    def test_boundary_scored_when_stream_ends_exactly_on_it(self, runner_setup):
        # Cap the replay so it ends exactly at a period boundary: that
        # boundary itself must be scored, with the window at the boundary.
        stream, window_config, initial, _ = runner_setup
        processor = ContinuousStreamProcessor(stream, window_config)
        boundary = processor.start_time + 3 * window_config.period
        events_to_boundary = processor.run(end_time=boundary)
        kwargs = dict(
            initial_factors=initial, rank=5, max_events=events_to_boundary,
            fitness_every=events_to_boundary,
        )
        sequential = run_method(stream, window_config, "als", **kwargs)
        batched = run_method(stream, window_config, "als", batched=True, **kwargs)
        assert sequential.checkpoint_times[-1] == pytest.approx(boundary)
        assert sequential.checkpoint_times == batched.checkpoint_times
        assert batched.fitness_series == pytest.approx(
            sequential.fitness_series, rel=1e-9
        )


class TestFitnessEveryRename:
    def test_checkpoint_every_alias_warns_and_applies(self, runner_setup):
        stream, window_config, initial, _ = runner_setup
        with pytest.warns(DeprecationWarning, match="fitness_every"):
            aliased = run_method(
                stream, window_config, "sns_vec",
                initial_factors=initial, rank=5,
                max_events=200, checkpoint_every=50,
            )
        renamed = run_method(
            stream, window_config, "sns_vec",
            initial_factors=initial, rank=5,
            max_events=200, fitness_every=50,
        )
        assert aliased.fitness_series == renamed.fitness_series
        assert aliased.checkpoint_times == renamed.checkpoint_times


class TestCheckpointResume:
    @pytest.mark.parametrize("batched", [False, True], ids=["per_event", "batched"])
    def test_resume_reproduces_uninterrupted_run(
        self, runner_setup, tmp_path, batched
    ):
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(
            initial_factors=initial, rank=5, theta=5,
            max_events=300, fitness_every=100, batched=batched,
        )
        reference = run_method(stream, window_config, "sns_rnd_plus", **kwargs)
        interrupted = dict(kwargs, max_events=150, checkpoint_dir=tmp_path)
        run_method(stream, window_config, "sns_rnd_plus", **interrupted)
        assert (tmp_path / "sns_rnd_plus").is_dir()
        resumed = run_method(
            stream, window_config, "sns_rnd_plus",
            checkpoint_dir=tmp_path, resume=True, **kwargs,
        )
        assert resumed.n_events == reference.n_events == 300
        assert resumed.final_fitness == reference.final_fitness
        if not batched:
            # Per-event fitness sampling is on exact event counts, so the
            # whole series matches; the batched engine may add one sample at
            # the interruption point (batch-granularity sampling).
            assert resumed.fitness_series == reference.fitness_series
            assert resumed.checkpoint_times == reference.checkpoint_times
        else:
            assert resumed.fitness_series[-1] == reference.fitness_series[-1]

    def test_completed_run_resumes_to_larger_horizon(self, runner_setup, tmp_path):
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(initial_factors=initial, rank=5, fitness_every=100)
        reference = run_method(
            stream, window_config, "sns_vec_plus", max_events=300, **kwargs
        )
        run_method(
            stream, window_config, "sns_vec_plus", max_events=150,
            checkpoint_dir=tmp_path, checkpoint_events=60, **kwargs
        )
        extended = run_method(
            stream, window_config, "sns_vec_plus", max_events=300,
            checkpoint_dir=tmp_path, resume=True, **kwargs
        )
        assert extended.n_events == 300
        assert extended.final_fitness == reference.final_fitness

    def test_resume_past_horizon_replays_nothing(self, runner_setup, tmp_path):
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(initial_factors=initial, rank=5, fitness_every=100)
        done = run_method(
            stream, window_config, "sns_vec", max_events=200,
            checkpoint_dir=tmp_path, **kwargs
        )
        again = run_method(
            stream, window_config, "sns_vec", max_events=200,
            checkpoint_dir=tmp_path, resume=True, **kwargs
        )
        assert again.n_events == 200
        assert again.final_fitness == done.final_fitness
        # Timing bookkeeping is lifetime: nothing was replayed, so the totals
        # (and the derived per-update mean) are exactly the original run's.
        assert again.total_update_seconds == done.total_update_seconds
        assert again.mean_update_microseconds == done.mean_update_microseconds
        assert again.n_updates == done.n_updates

    def test_resumed_timing_covers_the_lifetime_run(self, runner_setup, tmp_path):
        # A run interrupted at the halfway point and resumed must report
        # per-update timings over all max_events updates, not just the
        # events replayed after the restore.
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(initial_factors=initial, rank=5, fitness_every=100)
        first = run_method(
            stream, window_config, "sns_vec", max_events=150,
            checkpoint_dir=tmp_path, **kwargs
        )
        resumed = run_method(
            stream, window_config, "sns_vec", max_events=300,
            checkpoint_dir=tmp_path, resume=True, **kwargs
        )
        assert resumed.n_events == 300
        assert resumed.n_updates == 300
        # The resumed totals strictly include the first call's totals.
        assert resumed.total_update_seconds > first.total_update_seconds
        assert resumed.mean_update_microseconds == pytest.approx(
            1e6 * resumed.total_update_seconds / 300
        )

    def test_resume_with_different_hyper_parameters_is_rejected(
        self, runner_setup, tmp_path
    ):
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(initial_factors=initial, rank=5, fitness_every=100)
        run_method(
            stream, window_config, "sns_rnd_plus", max_events=100, theta=5,
            checkpoint_dir=tmp_path, **kwargs
        )
        with pytest.raises(ConfigurationError, match="theta"):
            run_method(
                stream, window_config, "sns_rnd_plus", max_events=200, theta=9,
                checkpoint_dir=tmp_path, resume=True, **kwargs
            )

    def test_checkpoint_knobs_without_dir_are_rejected(self, runner_setup):
        stream, window_config, initial, _ = runner_setup
        kwargs = dict(
            initial_factors=initial, rank=5, max_events=50, fitness_every=100
        )
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            run_method(
                stream, window_config, "sns_vec", checkpoint_events=10, **kwargs
            )
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            run_method(stream, window_config, "sns_vec", resume=True, **kwargs)

    def test_nonpositive_checkpoint_events_rejected(self, runner_setup, tmp_path):
        stream, window_config, initial, _ = runner_setup
        with pytest.raises(ConfigurationError, match="positive"):
            run_method(
                stream, window_config, "sns_vec",
                initial_factors=initial, rank=5, max_events=50,
                checkpoint_dir=tmp_path, checkpoint_events=0,
            )

    def test_periodic_methods_skip_checkpointing(self, runner_setup, tmp_path):
        stream, window_config, initial, _ = runner_setup
        result = run_method(
            stream, window_config, "als",
            initial_factors=initial, rank=5,
            max_events=200, fitness_every=100,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert result.kind == "periodic"
        assert not (tmp_path / "als").exists()


class TestExperimentResult:
    @pytest.fixture(scope="class")
    def experiment(self, runner_setup):
        stream, window_config, initial, initial_fitness = runner_setup
        methods = {}
        for name in ("sns_rnd_plus", "als"):
            methods[name] = run_method(
                stream, window_config, name,
                initial_factors=initial, rank=5, theta=5,
                max_events=500, checkpoint_every=100,
            )
        return ExperimentResult(
            dataset="unit_test",
            window_config=window_config,
            initial_fitness=initial_fitness,
            methods=methods,
        )

    def test_reference_relative_series_is_unity(self, experiment):
        assert experiment.relative_series("als") == [1.0] * len(
            experiment.methods["als"].fitness_series
        )

    def test_relative_series_uses_step_reference(self, experiment):
        series = experiment.relative_series("sns_rnd_plus")
        assert len(series) == len(experiment.methods["sns_rnd_plus"].fitness_series)
        assert all(np.isfinite(v) for v in series)

    def test_average_relative_fitness_in_sane_band(self, experiment):
        value = experiment.average_relative_fitness("sns_rnd_plus")
        assert 0.3 < value < 1.7

    def test_reference_fitness_before_first_boundary_is_initial(self, experiment):
        early = experiment.reference_fitness_at(-1.0)
        assert early == pytest.approx(experiment.initial_fitness)
