"""Backend selection threaded through configs, models, and checkpoints.

The backend is an *execution* detail: it changes which code computes the
factor math, never the result.  These tests pin the consequences —
``backend`` rides in every config layer, the active backend is recorded
in model state and checkpoint manifests, and state restores across
backends (a checkpoint written under numba loads on a numpy-only box).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.base import SNSConfig
from repro.core.registry import create_algorithm
from repro.exceptions import ConfigurationError
from repro.experiments.config import ExperimentSettings
from repro.kernels import registry
from repro.service.config import StreamConfig
from repro.stream.checkpoint import restore_run


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    monkeypatch.delenv(registry.ENV_VAR, raising=False)
    registry._reset()
    yield
    registry._reset()


@pytest.fixture
def initialized_model(small_processor, small_initial_factors):
    def build(**config_kwargs):
        config = SNSConfig(rank=4, theta=5, eta=100.0, seed=1, **config_kwargs)
        model = create_algorithm("sns_vec", config)
        model.initialize(small_processor.window, small_initial_factors)
        return model

    return build


class TestConfigValidation:
    def test_sns_config_default_is_auto(self):
        assert SNSConfig(rank=3).backend == "auto"

    @pytest.mark.parametrize("config_class, required", [
        (SNSConfig, dict(rank=3)),
        (ExperimentSettings, dict(dataset="nyc_taxi")),
        (StreamConfig, dict(mode_sizes=(3, 2), window_length=2, period=1.0, rank=2)),
    ])
    def test_empty_backend_rejected(self, config_class, required):
        with pytest.raises(ConfigurationError, match="backend"):
            config_class(backend="", **required)

    def test_stream_config_backend_roundtrips(self):
        config = StreamConfig(
            mode_sizes=(3, 2), window_length=2, period=1.0, rank=2,
            backend="numpy",
        )
        assert StreamConfig.from_dict(config.to_dict()).backend == "numpy"


class TestModelBackend:
    def test_kernel_backend_property_reports_resolved_name(self, initialized_model):
        model = initialized_model(backend="numpy")
        assert model.kernel_backend == "numpy"

    def test_unknown_backend_raises_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            create_algorithm("sns_vec", SNSConfig(rank=3, backend="typo"))

    def test_unavailable_backend_degrades_with_warning(self, initialized_model):
        if "numba" in registry.available_backends():
            pytest.skip("numba loads here; no degradation to observe")
        with pytest.warns(registry.KernelFallbackWarning):
            model = initialized_model(backend="numba")
        assert model.kernel_backend == "numpy"

    def test_state_dict_records_backend(self, initialized_model):
        state = initialized_model(backend="numpy").state_dict()
        assert state["kernel_backend"] == "numpy"

    def test_load_state_ignores_backend_mismatch(self, initialized_model, small_processor):
        # A checkpoint taken under any backend must restore under any
        # other: the backend is excluded from the config comparison.
        source = initialized_model(backend="numpy")
        state = source.state_dict()
        state["config"] = dict(state["config"], backend="auto")
        target_config = SNSConfig(rank=4, theta=5, eta=100.0, seed=1, backend="numpy")
        target = create_algorithm("sns_vec", target_config)
        target.load_state(small_processor.window, state)
        np.testing.assert_array_equal(target.factors[0], source.factors[0])

    def test_load_state_accepts_pre_backend_checkpoints(
        self, initialized_model, small_processor
    ):
        # Checkpoints written before the backend field existed carry no
        # "backend" key in their config dict; they must still restore.
        source = initialized_model()
        state = source.state_dict()
        legacy_config = dict(state["config"])
        legacy_config.pop("backend")
        state["config"] = legacy_config
        target = create_algorithm(
            "sns_vec", SNSConfig(rank=4, theta=5, eta=100.0, seed=1)
        )
        target.load_state(small_processor.window, state)
        assert target.n_updates == source.n_updates

    def test_legacy_sampling_pins_numpy_kernels(self):
        # sampling="legacy" promises the seed's bit-for-bit draw stream,
        # which only the reference kernels honour — even under backend
        # "auto" on a machine where numba resolves.
        model = create_algorithm(
            "sns_rnd", SNSConfig(rank=3, sampling="legacy", backend="auto")
        )
        assert model.kernel_backend == "numpy"


class TestCheckpointManifest:
    def test_manifest_records_kernel_backend(
        self, tmp_path, initialized_model, small_processor
    ):
        model = initialized_model(backend="numpy")
        path = tmp_path / "ckpt"
        small_processor.save_checkpoint(path, model=model)
        from repro.stream.checkpoint import load_checkpoint

        manifest = load_checkpoint(path).manifest
        assert manifest["model"]["kernel_backend"] == "numpy"

    def test_restore_rebuilds_model_with_saved_backend_config(
        self, tmp_path, initialized_model, small_processor
    ):
        model = initialized_model(backend="numpy")
        path = tmp_path / "ckpt"
        small_processor.save_checkpoint(path, model=model)
        _processor, restored, _extra = restore_run(path)
        assert restored is not None
        assert restored.config.backend == "numpy"
        np.testing.assert_array_equal(restored.factors[1], model.factors[1])
