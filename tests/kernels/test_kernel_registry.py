"""Unit tests for :mod:`repro.kernels.registry`.

The registry's failure semantics are the contract the whole backend knob
rests on: unknown names raise (typos must not silently run the slow
path), known-but-unavailable backends degrade to numpy with exactly one
warning per backend per process, and auto-detection never warns.
"""

from __future__ import annotations

import warnings

import pytest

from repro.exceptions import ConfigurationError, KernelUnavailableError
from repro.kernels import numba_backend
from repro.kernels import registry
from repro.kernels.api import KernelBackend, validate_backend
from repro.kernels.registry import (
    KernelFallbackWarning,
    available_backends,
    default_backend_name,
    known_backends,
    load_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)

NUMBA_IMPORTABLE = numba_backend._njit is not None


@pytest.fixture(autouse=True)
def clean_registry(monkeypatch):
    """Isolate each test: fresh cache/default/warn state, no env leakage."""
    monkeypatch.delenv(registry.ENV_VAR, raising=False)
    monkeypatch.delenv("NUMBA_DISABLE_JIT", raising=False)
    saved_factories = dict(registry._factories)
    registry._reset()
    yield
    registry._factories.clear()
    registry._factories.update(saved_factories)
    registry._reset()


class TestRegistration:
    def test_builtin_backends_are_registered(self):
        assert "numpy" in known_backends()
        assert "numba" in known_backends()

    def test_numpy_is_always_available(self):
        assert "numpy" in available_backends()
        backend = load_backend("numpy")
        assert backend.name == "numpy"
        validate_backend(backend)

    def test_auto_name_is_reserved(self):
        with pytest.raises(ConfigurationError):
            register_backend("auto", lambda: None)

    def test_duplicate_registration_rejected_unless_replace(self):
        factory = registry._factories["numpy"]
        with pytest.raises(ConfigurationError):
            register_backend("numpy", factory)
        register_backend("numpy", factory, replace=True)
        assert load_backend("numpy").name == "numpy"

    def test_loaded_instances_are_cached(self):
        assert load_backend("numpy") is load_backend("numpy")

    def test_validate_backend_rejects_non_backend(self):
        with pytest.raises(TypeError):
            validate_backend(object())


class TestUnknownNames:
    def test_load_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            load_backend("no-such-backend")

    def test_resolve_backend_raises_too(self):
        # A typo is a configuration error, never a silent fallback.
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            resolve_backend("no-such-backend")

    def test_set_default_backend_raises_immediately(self):
        with pytest.raises(ConfigurationError, match="unknown kernel backend"):
            set_default_backend("no-such-backend")


class TestFallback:
    def _register_unavailable(self, name="always-missing"):
        def factory() -> KernelBackend:
            raise KernelUnavailableError(f"{name} cannot load in tests")

        register_backend(name, factory)
        return name

    def test_unavailable_backend_warns_once_and_degrades(self):
        name = self._register_unavailable()
        with pytest.warns(KernelFallbackWarning, match=name):
            backend = resolve_backend(name)
        assert backend.name == "numpy"
        # Second resolution: same degradation, no second warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend(name).name == "numpy"

    def test_strict_loader_never_falls_back(self):
        name = self._register_unavailable()
        with pytest.raises(KernelUnavailableError):
            load_backend(name)

    @pytest.mark.skipif(
        NUMBA_IMPORTABLE, reason="numba importable: no fallback on this box"
    )
    def test_numba_absent_degrades_with_one_warning(self):
        with pytest.warns(KernelFallbackWarning, match="numba"):
            assert resolve_backend("numba").name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba").name == "numpy"

    @pytest.mark.skipif(
        not NUMBA_IMPORTABLE, reason="needs an importable numba"
    )
    def test_disable_jit_counts_as_unavailable(self, monkeypatch):
        monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
        with pytest.raises(KernelUnavailableError, match="NUMBA_DISABLE_JIT"):
            numba_backend.load()
        with pytest.warns(KernelFallbackWarning, match="numba"):
            assert resolve_backend("numba").name == "numpy"


class TestJitDisabledParsing:
    @pytest.mark.parametrize("value,disabled", [
        ("", False),
        ("0", False),
        (" 0 ", False),
        ("1", True),
        ("yes", True),
    ])
    def test_values(self, monkeypatch, value, disabled):
        monkeypatch.setenv("NUMBA_DISABLE_JIT", value)
        assert numba_backend.jit_disabled() is disabled

    def test_unset_means_enabled(self, monkeypatch):
        monkeypatch.delenv("NUMBA_DISABLE_JIT", raising=False)
        assert numba_backend.jit_disabled() is False


class TestSelectionPrecedence:
    def test_auto_is_the_default(self):
        assert default_backend_name() == registry.AUTO

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "numpy")
        assert default_backend_name() == "numpy"
        assert resolve_backend(None).name == "numpy"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "no-such-backend")
        set_default_backend("numpy")
        assert default_backend_name() == "numpy"
        assert resolve_backend("auto").name == "numpy"

    def test_explicit_name_beats_process_default(self):
        set_default_backend("numba")
        assert resolve_backend("numpy").name == "numpy"

    def test_clearing_the_default(self):
        set_default_backend("numpy")
        set_default_backend(None)
        assert default_backend_name() == registry.AUTO
        set_default_backend("numpy")
        set_default_backend("auto")
        assert default_backend_name() == registry.AUTO

    def test_auto_detection_never_warns(self):
        # Whether numba is importable or not, "auto" resolves silently.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = resolve_backend(None)
        assert backend.name in ("numpy", "numba")

    def test_auto_prefers_numba_when_available(self):
        expected = "numba" if "numba" in available_backends() else "numpy"
        assert resolve_backend("auto").name == expected
