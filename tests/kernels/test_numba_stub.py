"""The numba backend with a stubbed-in numba module.

The container running the tier-1 suite may not ship numba at all.  These
tests inject a minimal fake ``numba`` module whose ``njit`` is an
identity decorator and reload :mod:`repro.kernels.numba_backend` against
it, proving the full load path — availability check, backend
construction, registry resolution — end to end without the real JIT.
The kernel bodies then run as plain Python, which the parity suite
already holds to the 1e-12 contract.
"""

from __future__ import annotations

import importlib
import sys
import types

import numpy as np
import pytest

from repro.kernels import numba_backend, registry


def _fake_numba() -> types.ModuleType:
    module = types.ModuleType("numba")

    def njit(*args, **kwargs):
        # Mirror numba's dual calling convention: @njit and @njit(...)
        if args and callable(args[0]) and not kwargs:
            return args[0]

        def decorate(function):
            return function

        return decorate

    module.njit = njit
    return module


@pytest.fixture
def stubbed_backend(monkeypatch):
    """Reload the numba backend module against a fake numba, then restore."""
    monkeypatch.delenv("NUMBA_DISABLE_JIT", raising=False)
    original = sys.modules.get("numba")
    sys.modules["numba"] = _fake_numba()
    try:
        importlib.reload(numba_backend)
        yield numba_backend
    finally:
        if original is None:
            sys.modules.pop("numba", None)
        else:
            sys.modules["numba"] = original
        importlib.reload(numba_backend)
        # The registry cache may hold a backend built from the stubbed
        # module; later tests must re-resolve against the restored one.
        registry._reset()


def test_load_succeeds_with_stub(stubbed_backend):
    backend = stubbed_backend.load()
    assert backend.name == "numba"
    assert stubbed_backend._njit is not None


def test_disable_jit_still_refuses_with_stub(stubbed_backend, monkeypatch):
    from repro.exceptions import KernelUnavailableError

    monkeypatch.setenv("NUMBA_DISABLE_JIT", "1")
    with pytest.raises(KernelUnavailableError, match="NUMBA_DISABLE_JIT"):
        stubbed_backend.load()


def test_registry_resolves_numba_under_stub(stubbed_backend):
    registry._reset()
    assert "numba" in registry.available_backends()
    assert registry.resolve_backend("numba").name == "numba"
    # Auto-detection now prefers the (stubbed) numba backend.
    assert registry.resolve_backend("auto").name == "numba"


def test_stubbed_kernels_agree_with_numpy(stubbed_backend):
    reference = registry.numpy_backend()
    rng = np.random.default_rng(42)
    shape, rank, mode = (4, 3, 5), 3, 1
    factors = [rng.standard_normal((n, rank)) for n in shape]
    indices = np.column_stack(
        [rng.integers(0, n, size=12) for n in shape]
    ).astype(np.int64)
    values = rng.standard_normal(12)
    np.testing.assert_allclose(
        stubbed_backend.mttkrp_coo(indices, values, factors, mode, shape[mode]),
        reference.mttkrp_coo(indices, values, factors, mode, shape[mode]),
        rtol=1e-12,
        atol=1e-12,
    )
