"""Property-based parity: every backend agrees with the numpy reference.

The kernel API contract (:mod:`repro.kernels.api`) demands that every
backend match the numpy reference to within ``1e-12`` on well-scaled
inputs, over all five kernels.  Hypothesis drives the shapes and a seed;
the arrays themselves come from a seeded generator so cases stay cheap
and reproducible.

The candidates always include the :mod:`repro.kernels.numba_backend`
module functions: with numba installed they are the JIT-compiled backend,
without it they run as plain Python over the very same bodies — so the
numerical logic is exercised on every environment, compiled or not.
"""

from __future__ import annotations

import importlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import numba_backend
from repro.kernels.api import KernelBackend, empty_overrides
from repro.kernels.registry import available_backends, load_backend

REFERENCE = importlib.import_module("repro.kernels.numpy_backend").load()

TOLERANCE = dict(rtol=1e-12, atol=1e-12)


def _candidate_backends() -> list[KernelBackend]:
    suffix = "" if numba_backend._njit is not None else " (pure python)"
    candidates = [
        KernelBackend(
            name=f"numba-module{suffix}",
            mttkrp_coo=numba_backend.mttkrp_coo,
            mttkrp_rows=numba_backend.mttkrp_rows,
            sampled_residual=numba_backend.sampled_residual,
            reconstruct_coords=numba_backend.reconstruct_coords,
            solve_regularized=numba_backend.solve_regularized,
        )
    ]
    for name in available_backends():
        if name != "numpy":
            candidates.append(load_backend(name))
    return candidates


CANDIDATES = _candidate_backends()

# Parametrize (not a fixture): hypothesis health-checks function-scoped
# fixtures inside @given, while parametrized arguments are fine.
candidates = pytest.mark.parametrize(
    "candidate", CANDIDATES, ids=[c.name for c in CANDIDATES]
)


@st.composite
def tensor_cases(draw):
    """(shape, rank, mode, rng) for the gather-style kernels."""
    order = draw(st.integers(2, 4))
    shape = tuple(draw(st.integers(1, 5)) for _ in range(order))
    rank = draw(st.integers(1, 4))
    mode = draw(st.integers(0, order - 1))
    seed = draw(st.integers(0, 2**31 - 1))
    return shape, rank, mode, np.random.default_rng(seed)


def _random_factors(shape, rank, rng):
    return [rng.standard_normal((n, rank)) for n in shape]


def _random_indices(shape, count, rng):
    return np.column_stack(
        [rng.integers(0, n, size=count) for n in shape]
    ).astype(np.int64)


def _random_overrides(shape, rank, rng, *, skip_mode=None, count=3):
    order = len(shape)
    allowed = [m for m in range(order) if m != skip_mode]
    n = int(rng.integers(0, count + 1)) if allowed else 0
    if n == 0:
        return empty_overrides(rank)
    modes = rng.choice(allowed, size=n).astype(np.int64)
    indices = np.array(
        [rng.integers(0, shape[m]) for m in modes], dtype=np.int64
    )
    rows = rng.standard_normal((n, rank))
    return modes, indices, rows


@candidates
class TestMttkrpParity:
    @settings(max_examples=40, deadline=None)
    @given(case=tensor_cases(), nnz=st.integers(0, 25))
    def test_mttkrp_coo(self, candidate, case, nnz):
        shape, rank, mode, rng = case
        factors = _random_factors(shape, rank, rng)
        indices = _random_indices(shape, nnz, rng)
        values = rng.standard_normal(nnz)
        expected = REFERENCE.mttkrp_coo(indices, values, factors, mode, shape[mode])
        actual = candidate.mttkrp_coo(indices, values, factors, mode, shape[mode])
        np.testing.assert_allclose(actual, expected, **TOLERANCE)

    @settings(max_examples=40, deadline=None)
    @given(case=tensor_cases(), nnz=st.integers(0, 25))
    def test_mttkrp_rows(self, candidate, case, nnz):
        shape, rank, mode, rng = case
        factors = _random_factors(shape, rank, rng)
        indices = _random_indices(shape, nnz, rng)
        # Slice-array contract: every entry shares the mode-th coordinate.
        indices[:, mode] = int(rng.integers(0, shape[mode]))
        values = rng.standard_normal(nnz)
        expected = REFERENCE.mttkrp_rows(indices, values, factors, mode)
        actual = candidate.mttkrp_rows(indices, values, factors, mode)
        np.testing.assert_allclose(actual, expected, **TOLERANCE)


@candidates
class TestSampledResidualParity:
    @settings(max_examples=40, deadline=None)
    @given(case=tensor_cases(), theta=st.integers(0, 20))
    def test_sampled_residual(self, candidate, case, theta):
        shape, rank, mode, rng = case
        factors = _random_factors(shape, rank, rng)
        samples = _random_indices(shape, theta, rng)
        observed = rng.standard_normal(theta)
        prev_row = rng.standard_normal(rank)
        modes, indices, rows = _random_overrides(shape, rank, rng, skip_mode=mode)
        expected = REFERENCE.sampled_residual(
            samples, observed, factors, mode, prev_row, modes, indices, rows
        )
        actual = candidate.sampled_residual(
            samples, observed, factors, mode, prev_row, modes, indices, rows
        )
        np.testing.assert_allclose(actual, expected, **TOLERANCE)


@candidates
class TestReconstructParity:
    @settings(max_examples=40, deadline=None)
    @given(case=tensor_cases(), count=st.integers(0, 15))
    def test_reconstruct_coords(self, candidate, case, count):
        shape, rank, _mode, rng = case
        factors = _random_factors(shape, rank, rng)
        coordinates = _random_indices(shape, count, rng)
        modes, indices, rows = _random_overrides(shape, rank, rng)
        expected = REFERENCE.reconstruct_coords(
            coordinates, factors, modes, indices, rows
        )
        actual = candidate.reconstruct_coords(
            coordinates, factors, modes, indices, rows
        )
        np.testing.assert_allclose(actual, expected, **TOLERANCE)


@candidates
class TestSolveParity:
    @settings(max_examples=40, deadline=None)
    @given(
        rank=st.integers(1, 6),
        batch=st.integers(0, 4),  # 0 = the historical 1-D rhs shape
        regularized=st.booleans(),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_well_conditioned_solve(self, candidate, rank, batch, regularized, seed):
        rng = np.random.default_rng(seed)
        half = rng.standard_normal((rank, rank))
        # Adding rank * I keeps the condition number small so the two
        # factorizations (LAPACK dposv vs the hand-rolled Cholesky) agree
        # well inside the 1e-12 contract.
        matrix = half @ half.T + rank * np.eye(rank)
        ridge = 1e-6 * np.eye(rank) if regularized else None
        rhs = (
            rng.standard_normal(rank)
            if batch == 0
            else rng.standard_normal((batch, rank))
        )
        expected = REFERENCE.solve_regularized(
            matrix, rhs, ridge, np.empty_like(matrix)
        )
        actual = candidate.solve_regularized(
            matrix, rhs, ridge, np.empty_like(matrix)
        )
        assert actual.shape == expected.shape
        np.testing.assert_allclose(actual, expected, **TOLERANCE)

    def test_singular_matrix_matches_reference_exactly(self, candidate):
        # Non-definite systems must take the same pinv path as numpy — the
        # candidate defers to the reference, so outputs are bit-identical.
        rank = 4
        matrix = np.zeros((rank, rank))
        rhs = np.arange(1.0, rank + 1.0)
        expected = REFERENCE.solve_regularized(matrix, rhs, None, None)
        actual = candidate.solve_regularized(matrix, rhs, None, None)
        np.testing.assert_array_equal(actual, expected)

    def test_batched_rows_match_row_by_row(self, candidate):
        rng = np.random.default_rng(7)
        rank, batch = 5, 3
        half = rng.standard_normal((rank, rank))
        matrix = half @ half.T + rank * np.eye(rank)
        ridge = 1e-9 * np.eye(rank)
        rhs = rng.standard_normal((batch, rank))
        batched = candidate.solve_regularized(matrix, rhs, ridge, np.empty_like(matrix))
        for row in range(batch):
            single = candidate.solve_regularized(
                matrix, rhs[row], ridge, np.empty_like(matrix)
            )
            np.testing.assert_allclose(batched[row], single, **TOLERANCE)
