"""Unit tests for the evaluation metrics and timing helpers."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.metrics.errors import (
    mean_absolute_error,
    reconstruction_errors,
    root_mean_squared_error,
)
from repro.exceptions import TimerError
from repro.metrics.fitness import fitness, relative_fitness
from repro.metrics.timing import Stopwatch, UpdateTimer
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


class TestFitness:
    def test_fitness_delegates_to_kruskal(self, rng):
        kruskal = KruskalTensor(random_factors((4, 4), rank=2, rng=rng))
        sparse = SparseTensor.from_dense(kruskal.to_dense())
        assert fitness(kruskal, sparse) == pytest.approx(1.0, abs=1e-9)

    def test_relative_fitness_ratio(self):
        assert relative_fitness(0.6, 0.8) == pytest.approx(0.75)

    def test_relative_fitness_degenerate_reference(self):
        assert math.isnan(relative_fitness(0.5, 0.0))
        assert math.isnan(relative_fitness(0.5, float("nan")))


class TestErrors:
    @pytest.fixture
    def kruskal_and_sparse(self, rng):
        kruskal = KruskalTensor(random_factors((5, 4), rank=2, rng=rng))
        sparse = SparseTensor((5, 4))
        for _ in range(8):
            coordinate = (int(rng.integers(5)), int(rng.integers(4)))
            sparse.set(coordinate, float(rng.uniform(1.0, 3.0)))
        return kruskal, sparse

    def test_reconstruction_errors_signs_and_values(self, kruskal_and_sparse):
        kruskal, sparse = kruskal_and_sparse
        errors = reconstruction_errors(kruskal, sparse)
        assert set(errors) == set(sparse.coordinates())
        for coordinate, error in errors.items():
            expected = sparse.get(coordinate) - kruskal.value_at(coordinate)
            assert error == pytest.approx(expected)

    def test_rmse_and_mae(self, kruskal_and_sparse):
        kruskal, sparse = kruskal_and_sparse
        errors = np.array(list(reconstruction_errors(kruskal, sparse).values()))
        assert root_mean_squared_error(kruskal, sparse) == pytest.approx(
            np.sqrt(np.mean(errors**2))
        )
        assert mean_absolute_error(kruskal, sparse) == pytest.approx(
            np.mean(np.abs(errors))
        )

    def test_empty_tensor_gives_zero_errors(self, rng):
        kruskal = KruskalTensor(random_factors((3, 3), rank=2, rng=rng))
        empty = SparseTensor((3, 3))
        assert reconstruction_errors(kruskal, empty) == {}
        assert root_mean_squared_error(kruskal, empty) == 0.0
        assert mean_absolute_error(kruskal, empty) == 0.0


class TestTiming:
    def test_stopwatch_measures_elapsed_time(self):
        with Stopwatch() as watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.009

    def test_update_timer_accumulates(self):
        timer = UpdateTimer()
        assert timer.mean_seconds == 0.0
        for _ in range(3):
            timer.start()
            time.sleep(0.002)
            timer.stop()
        assert timer.n_updates == 3
        assert timer.mean_seconds >= 0.0015
        assert timer.mean_microseconds == pytest.approx(1e6 * timer.mean_seconds)

    def test_stopwatch_is_reusable(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.002)
        first = watch.elapsed
        with watch:
            pass
        # Each use measures its own interval, not a running total.
        assert watch.elapsed < first

    def test_stop_without_start_raises(self):
        timer = UpdateTimer()
        with pytest.raises(TimerError):
            timer.stop()
        assert timer.total_seconds == 0.0
        assert timer.n_updates == 0

    def test_double_stop_raises(self):
        timer = UpdateTimer()
        timer.start()
        timer.stop()
        with pytest.raises(TimerError):
            timer.stop()
        assert timer.n_updates == 1

    def test_restart_overwrites_pending_start(self):
        timer = UpdateTimer()
        timer.start()
        time.sleep(0.002)
        timer.start()  # restart: the first interval is discarded
        timer.stop()
        assert timer.n_updates == 1
        assert timer.total_seconds < 0.002

    def test_restore_seeds_lifetime_totals(self):
        timer = UpdateTimer()
        timer.restore(2.0, 4)
        assert timer.total_seconds == 2.0
        assert timer.n_updates == 4
        assert timer.mean_seconds == pytest.approx(0.5)
        timer.start()
        timer.stop()
        assert timer.n_updates == 5
        assert timer.total_seconds >= 2.0
        with pytest.raises(TimerError):
            timer.restore(-1.0, 0)
        with pytest.raises(TimerError):
            timer.restore(0.0, -3)
