"""Fixtures for the streaming-service tests (helpers live in helpers.py)."""

from __future__ import annotations

import os
import sys

import pytest

# The test tree is not a package; make `import helpers` work everywhere.
sys.path.insert(0, os.path.dirname(__file__))

from helpers import ServerProcess, tiny_config  # noqa: E402

from repro.service.config import ServiceConfig  # noqa: E402


@pytest.fixture
def stream_config():
    return tiny_config()


@pytest.fixture
def launch():
    """Factory of ``repro serve`` subprocesses, cleaned up on teardown."""
    processes: list[ServerProcess] = []

    def _launch(*extra_args: str) -> ServerProcess:
        process = ServerProcess(*extra_args)
        processes.append(process)
        return process

    yield _launch
    for process in processes:
        process.cleanup()


@pytest.fixture
def service_config(tmp_path):
    return ServiceConfig(
        max_streams=8, queue_limit=4, checkpoint_root=str(tmp_path / "state")
    )
