"""Shared helpers for the streaming-service tests.

Every test stream here is deliberately tiny (small modes, short window,
few ALS iterations) so that multi-stream scenarios — including the
1,000-stream soak — stay fast.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import numpy as np

from repro.service.client import ServiceClient
from repro.service.config import StreamConfig
from repro.stream.events import StreamRecord

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

#: Geometry shared by most service tests: W*T = 15, so records in [0, 15)
#: fill the initial window and the stream goes live at t=15.
TINY_KWARGS = dict(
    mode_sizes=(4, 3),
    window_length=3,
    period=5.0,
    rank=2,
    als_iterations=2,
    detector_warmup=5,
    seed=0,
)


def tiny_config(**overrides) -> StreamConfig:
    kwargs = dict(TINY_KWARGS)
    kwargs.update(overrides)
    return StreamConfig(**kwargs)


def make_records(
    n: int,
    start: float,
    spacing: float,
    seed: int,
    mode_sizes=(4, 3),
) -> list[StreamRecord]:
    """``n`` chronologically ordered random records starting at ``start``."""
    rng = np.random.default_rng(seed)
    return [
        StreamRecord(
            indices=tuple(int(rng.integers(0, size)) for size in mode_sizes),
            value=float(rng.uniform(0.5, 2.0)),
            time=start + position * spacing,
        )
        for position in range(n)
    ]


def wire_records(records) -> list[list]:
    """Wire form of a record chunk: ``[[indices...], value, time]``."""
    return [[list(r.indices), r.value, r.time] for r in records]


def warm_records(seed: int = 1) -> list[StreamRecord]:
    """Records filling the initial window of a TINY stream: t in [0, 15)."""
    return make_records(30, start=0.0, spacing=0.5, seed=seed)


def live_chunks(n_chunks: int = 3, seed: int = 2) -> list[list[StreamRecord]]:
    """Chronological post-warm-up chunks (t > 15) for a TINY stream."""
    records = make_records(n_chunks * 8, start=15.25, spacing=0.25, seed=seed)
    return [records[i * 8 : (i + 1) * 8] for i in range(n_chunks)]


class ServerProcess:
    """A ``python -m repro.service`` subprocess bound to a free port."""

    def __init__(self, *extra_args: str):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [SRC, env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "--port", "0", *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.port = self._await_port()

    def _await_port(self) -> int:
        deadline = time.monotonic() + 30.0
        assert self.process.stdout is not None
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            if line.startswith("listening on "):
                return int(line.rsplit(":", 1)[1])
        raise AssertionError(
            f"server never announced its port (rc={self.process.poll()})"
        )

    def client(self, timeout: float = 60.0, **kwargs) -> ServiceClient:
        return ServiceClient("127.0.0.1", self.port, timeout=timeout, **kwargs)

    def kill(self) -> None:
        self.process.send_signal(signal.SIGKILL)
        self.process.wait(timeout=10.0)

    def wait(self, timeout: float = 30.0) -> int:
        return self.process.wait(timeout=timeout)

    def cleanup(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10.0)
        if self.process.stdout is not None:
            self.process.stdout.close()
