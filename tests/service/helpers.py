"""Shared helpers for the streaming-service tests.

Every test stream here is deliberately tiny (small modes, short window,
few ALS iterations) so that multi-stream scenarios — including the
100-stream soak — stay fast.
"""

from __future__ import annotations

import numpy as np

from repro.service.config import StreamConfig
from repro.stream.events import StreamRecord

#: Geometry shared by most service tests: W*T = 15, so records in [0, 15)
#: fill the initial window and the stream goes live at t=15.
TINY_KWARGS = dict(
    mode_sizes=(4, 3),
    window_length=3,
    period=5.0,
    rank=2,
    als_iterations=2,
    detector_warmup=5,
    seed=0,
)


def tiny_config(**overrides) -> StreamConfig:
    kwargs = dict(TINY_KWARGS)
    kwargs.update(overrides)
    return StreamConfig(**kwargs)


def make_records(
    n: int,
    start: float,
    spacing: float,
    seed: int,
    mode_sizes=(4, 3),
) -> list[StreamRecord]:
    """``n`` chronologically ordered random records starting at ``start``."""
    rng = np.random.default_rng(seed)
    return [
        StreamRecord(
            indices=tuple(int(rng.integers(0, size)) for size in mode_sizes),
            value=float(rng.uniform(0.5, 2.0)),
            time=start + position * spacing,
        )
        for position in range(n)
    ]


def wire_records(records) -> list[list]:
    """Wire form of a record chunk: ``[[indices...], value, time]``."""
    return [[list(r.indices), r.value, r.time] for r in records]


def warm_records(seed: int = 1) -> list[StreamRecord]:
    """Records filling the initial window of a TINY stream: t in [0, 15)."""
    return make_records(30, start=0.0, spacing=0.5, seed=seed)


def live_chunks(n_chunks: int = 3, seed: int = 2) -> list[list[StreamRecord]]:
    """Chronological post-warm-up chunks (t > 15) for a TINY stream."""
    records = make_records(n_chunks * 8, start=15.25, spacing=0.25, seed=seed)
    return [records[i * 8 : (i + 1) * 8] for i in range(n_chunks)]
