"""Chaos equivalence over real TCP: a scripted fault plan plus a retrying
client must converge to the exact fault-free state.

This is the acceptance test for the whole robustness stack working
together: the server injects connection resets before AND after the
ingest is applied, synthetic overloads, a failing checkpoint write, and a
worker stall — while an ``auto_seq`` retrying client just keeps feeding
records.  At the end, every stream's factors must be bit-identical to the
sequential fault-free reference and every record must have been applied
exactly once (resets after apply are absorbed by seq dedup, resets before
apply by the retry).
"""

from __future__ import annotations

import json
import time

import numpy as np

from helpers import live_chunks, tiny_config, warm_records, wire_records
from test_server import sequential_reference

N_CHUNKS = 4
STREAMS = ("tenant-0", "tenant-1", "tenant-2")


def write_plan(tmp_path) -> str:
    """A deterministic plan that provably fires on every stream.

    Hits are counted per (rule, stream), so with five ingest requests per
    stream in the fault-free schedule, ``hits: [2]`` aborts every
    stream's second ingest — no probability involved, any seed replays.
    """
    plan = {
        "seed": 1234,
        "rules": [
            # Reset BEFORE dispatch: the ingest never landed; the retry
            # (same seq) must apply it exactly once.
            {
                "site": "connection.reset",
                "stage": "request",
                "ops": ["ingest"],
                "hits": [2],
            },
            # Reset AFTER dispatch: the ingest DID land; the retry is a
            # duplicate the server must ack without re-applying.
            {
                "site": "connection.reset",
                "stage": "response",
                "ops": ["ingest"],
                "hits": [5],
            },
            # Synthetic backpressure: always retryable.  Hit 3 of the
            # *dispatched* ingests is the third chunk send; its retry is
            # then the request the response-stage reset (below, hit 5 of
            # all ingest requests) aborts AFTER the apply — forcing the
            # duplicate-ack path on the next retry.
            {"site": "ingest.overload", "hits": [3]},
            # Every stream's first checkpoint write dies on a full disk;
            # the backoff retry must recover it off the hot path.
            {
                "site": "checkpoint.write",
                "kind": "enospc",
                "stage": "arrays",
                "hits": [1],
            },
            # A stall long enough for the watchdog to notice.
            {
                "site": "worker.stall",
                "kind": "delay",
                "delay": 0.15,
                "hits": [3],
            },
        ],
    }
    path = tmp_path / "plan.json"
    path.write_text(json.dumps(plan))
    return str(path)


class TestChaosEquivalence:
    def test_faulted_run_converges_to_fault_free_state(self, launch, tmp_path):
        server = launch(
            "--fault-plan", write_plan(tmp_path),
            "--checkpoint-root", str(tmp_path / "state"),
            "--checkpoint-events", "20",
            "--checkpoint-retry-backoff", "0.05",
            "--watchdog-stall", "0.05",
        )
        inputs = {
            stream: (
                warm_records(seed=60 + position),
                live_chunks(N_CHUNKS, seed=160 + position),
            )
            for position, stream in enumerate(STREAMS)
        }
        with server.client(
            retries=8, auto_seq=True, backoff_base=0.01, backoff_max=0.2,
            seed=99,
        ) as client:
            for stream, (warm, chunks) in inputs.items():
                client.create_stream(stream, **tiny_config().to_dict())
                client.ingest(stream, wire_records(warm))
                client.start_stream(stream)
                for chunk in chunks:
                    client.ingest(stream, wire_records(chunk))
                assert client.flush(stream)["deferred_errors"] == []
            # The plan guarantees faults actually fired for every stream:
            # one request-reset, one overload, one response-reset each.
            assert client.retries_performed >= 3 * len(STREAMS)
            assert client.reconnects >= 2 * len(STREAMS)

            health = client.health()
            fired = health["faults"]["fired_by_site"]
            assert fired.get("connection.reset", 0) >= 2 * len(STREAMS)
            assert fired.get("ingest.overload", 0) >= len(STREAMS)
            assert fired.get("checkpoint.write", 0) >= len(STREAMS)
            assert fired.get("worker.stall", 0) >= len(STREAMS)

            for stream, (warm, chunks) in inputs.items():
                telemetry = client.telemetry(stream)["telemetry"]
                # Exactly once: not one record lost, not one re-applied.
                expected = len(warm) + sum(len(c) for c in chunks)
                assert telemetry["records_ingested"] == expected
                # The post-apply reset forced at least one duplicate ack.
                assert telemetry["duplicates_skipped"] >= 1

                reference = sequential_reference(warm, chunks)
                factors = client.factors(stream)["factors"]
                for fa, fb in zip(factors, reference.factors()["factors"]):
                    assert np.array_equal(np.array(fa), np.array(fb))

            # Checkpoint retries recovered the ENOSPC failures: wait for
            # the off-hot-path retry, then confirm health is clean again.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                health = client.health()
                if health["status"] == "ok":
                    break
                time.sleep(0.1)
            assert health["status"] == "ok"
            for stream in STREAMS:
                row = client.health(stream)
                assert row["status"] == "ok"
                assert row["checkpoint_failures"] >= 1  # it DID fail once
                # auto_seq: warm ingest is seq 1, then one per chunk.
                assert row["last_seq"] == 1 + N_CHUNKS
            client.shutdown()
        assert server.wait() == 0
