"""Checkpoint-failure recovery matrix.

The durability contract under failing disks: a failed checkpoint write
must (1) leave the stream live and serving, (2) mark it *degraded* with
the error surfaced in telemetry/health, (3) be retried with backoff off
the hot path, (4) never corrupt the previous on-disk checkpoint — a
SIGKILL while degraded recovers bit-exactly from the last *successful*
write — and (5) clear the degraded state on the next successful write.

Faults are injected deterministically through the ``checkpoint.write``
site (see ``repro.service.faults``), at every stage of the atomic
directory swap: ``begin`` (nothing written), ``arrays`` (partial npz in
the temp dir), ``manifest`` (npz written, manifest missing) and ``commit``
(the swap landed but the writer saw an error — the ambiguous success).
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service.config import ServiceConfig
from repro.service.manager import ServiceManager
from repro.service.server import StreamingServer

from helpers import live_chunks, tiny_config, warm_records, wire_records
from test_server import create_and_start, dispatch, sequential_reference


def checkpoint_fault(stage="begin", hits=(1,), kind="enospc", **kwargs):
    rule = {"site": "checkpoint.write", "kind": kind, "stage": stage, **kwargs}
    if hits is not None:
        rule["hits"] = list(hits)
    return rule


class TestDegradedState:
    def test_failed_count_trigger_degrades_then_recovers(self, tmp_path):
        """An ENOSPC on the count-triggered background write: the stream
        stays live, health reports degraded, the backoff retry succeeds
        and clears the state, and no chunk is lost or double-applied."""
        config = ServiceConfig(
            checkpoint_root=str(tmp_path / "state"),
            checkpoint_events=5,
            checkpoint_retry_backoff=0.05,
            fault_plan={"rules": [checkpoint_fault(hits=(1,))]},
        )
        warm = warm_records(seed=60)
        chunks = live_chunks(2, seed=61)

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "s", warm)
            await dispatch(
                server, "ingest", stream="s", records=wire_records(chunks[0])
            )
            await dispatch(server, "flush", stream="s")
            # The count-triggered write ran (flush waits for the writer)
            # and failed: degraded, error surfaced, stream still live.
            health = await dispatch(server, "health", stream="s")
            assert health["status"] == "degraded"
            assert health["degraded"] is True
            assert health["checkpoint_failures"] == 1
            assert "OSError" in health["last_checkpoint_error"]
            telemetry = await dispatch(server, "telemetry", stream="s")
            assert telemetry["telemetry"]["degraded"] is True
            assert telemetry["telemetry"]["checkpoint_failure_streak"] == 1
            assert telemetry["telemetry"]["checkpoints_written"] == 0
            # Service-level health aggregates the degraded stream.
            overall = await dispatch(server, "health")
            assert overall["status"] == "degraded"
            assert overall["streams"]["degraded"] == ["s"]
            assert overall["faults"]["fired_by_site"] == {
                "checkpoint.write": 1
            }
            # The worker was never killed: ingestion continues.
            await dispatch(
                server, "ingest", stream="s", records=wire_records(chunks[1])
            )
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            # The backoff retry (0.05 s base) fires and succeeds.
            deadline = asyncio.get_running_loop().time() + 5.0
            while True:
                health = await dispatch(server, "health", stream="s")
                if health["status"] == "ok":
                    break
                assert asyncio.get_running_loop().time() < deadline, health
                await asyncio.sleep(0.05)
            assert health["last_checkpoint_error"] is None
            telemetry = await dispatch(server, "telemetry", stream="s")
            assert telemetry["telemetry"]["checkpoint_failure_streak"] == 0
            assert telemetry["telemetry"]["checkpoints_written"] >= 1
            # Failure counters are lifetime counters: they do not reset.
            assert telemetry["telemetry"]["checkpoint_failures"] == 1
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        reference = sequential_reference(warm, chunks)
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_persistent_failures_go_checkpoint_stale(self, tmp_path):
        """Writes that keep failing push the stream past 2x its checkpoint
        budget: health flags it stale (degraded) while it keeps serving."""
        config = ServiceConfig(
            checkpoint_root=str(tmp_path / "state"),
            checkpoint_events=5,
            checkpoint_retry_backoff=0.05,
            fault_plan={
                "rules": [checkpoint_fault(hits=None, probability=1.0)]
            },
        )

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "s", warm_records(seed=62))
            for chunk in live_chunks(3, seed=63):
                await dispatch(
                    server, "ingest", stream="s", records=wire_records(chunk)
                )
            await dispatch(server, "flush", stream="s")
            health = await dispatch(server, "health", stream="s")
            telemetry = await dispatch(server, "telemetry", stream="s")
            await server.stop()
            return health, telemetry

        health, telemetry = asyncio.run(scenario())
        assert health["status"] == "degraded"
        assert health["checkpoint_stale"] is True
        assert health["events_since_checkpoint"] >= 10
        assert telemetry["telemetry"]["checkpoints_written"] == 0
        assert telemetry["telemetry"]["checkpoint_failures"] >= 1


class TestOnDiskSafety:
    @pytest.mark.parametrize("stage", ["arrays", "manifest"])
    def test_partial_write_preserves_previous_checkpoint(
        self, tmp_path, stage
    ):
        """A write that dies mid-directory (partial npz / missing manifest)
        must not damage the previous checkpoint: a SIGKILL while degraded
        recovers bit-exactly from the last successful write."""
        root = str(tmp_path / "state")
        config = ServiceConfig(
            checkpoint_root=root,
            fault_plan={
                "rules": [
                    checkpoint_fault(stage=stage, kind="oserror", hits=(2,))
                ]
            },
        )
        warm = warm_records(seed=64)
        chunk = live_chunks(1, seed=65)[0]

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "s", warm)
            # Write #1 succeeds; its factors are the recovery target.
            response = await dispatch(server, "checkpoint", stream="s")
            assert response["ok"]
            saved = await dispatch(server, "factors", stream="s")
            # Post-checkpoint work, then write #2 dies mid-directory.
            await dispatch(
                server, "ingest", stream="s", records=wire_records(chunk)
            )
            await dispatch(server, "flush", stream="s")
            with pytest.raises(OSError):
                await dispatch(server, "checkpoint", stream="s")
            health = await dispatch(server, "health", stream="s")
            assert health["status"] == "degraded"
            # Emulated SIGKILL: recover from disk *now*, with the failed
            # write's debris still around.  Only checkpoint #1 exists.
            recovered = ServiceManager(ServiceConfig(checkpoint_root=root))
            report = recovered.recover()
            assert report["failed"] == {}
            after_crash = recovered.get("s").factors()
            # Still live in the original server; write #3 succeeds and
            # clears the degraded state.
            response = await dispatch(server, "checkpoint", stream="s")
            assert response["ok"]
            health = await dispatch(server, "health", stream="s")
            assert health["status"] == "ok"
            current = await dispatch(server, "factors", stream="s")
            await server.stop()
            return saved, after_crash, current

        saved, after_crash, current = asyncio.run(scenario())
        for fa, fb in zip(saved["factors"], after_crash["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))
        # After the successful write #3, recovery sees the newest state.
        recovered = ServiceManager(ServiceConfig(checkpoint_root=root))
        recovered.recover()
        for fa, fb in zip(
            current["factors"], recovered.get("s").factors()["factors"]
        ):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_commit_stage_fault_is_an_ambiguous_success(self, tmp_path):
        """A fault after the atomic swap: the write landed but the writer
        saw an error.  The conservative answer — count it as a failure and
        retry — must be safe, and recovery sees the new state."""
        root = str(tmp_path / "state")
        config = ServiceConfig(
            checkpoint_root=root,
            fault_plan={
                "rules": [
                    checkpoint_fault(stage="commit", kind="oserror", hits=(1,))
                ]
            },
        )

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "s", warm_records(seed=66))
            with pytest.raises(OSError):
                await dispatch(server, "checkpoint", stream="s")
            telemetry = await dispatch(server, "telemetry", stream="s")
            assert telemetry["telemetry"]["degraded"] is True
            factors = await dispatch(server, "factors", stream="s")
            # The retry is a no-op state-wise and clears the degraded flag.
            response = await dispatch(server, "checkpoint", stream="s")
            assert response["ok"]
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        recovered = ServiceManager(ServiceConfig(checkpoint_root=root))
        assert recovered.recover()["recovered"] == ["s"]
        for fa, fb in zip(
            factors["factors"], recovered.get("s").factors()["factors"]
        ):
            assert np.array_equal(np.array(fa), np.array(fb))


class TestIsolationAcrossStreams:
    def test_checkpoint_all_is_best_effort(self, tmp_path):
        """One stream's dead disk must not keep the others from being
        persisted — by the op, by the graceful stop, or by recovery."""
        root = str(tmp_path / "state")
        config = ServiceConfig(
            checkpoint_root=root,
            fault_plan={
                "rules": [
                    checkpoint_fault(
                        hits=None, probability=1.0, streams=["sick"]
                    )
                ]
            },
        )

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "sick", warm_records(seed=67))
            await create_and_start(server, "healthy", warm_records(seed=68))
            response = await dispatch(server, "checkpoint_all")
            assert response["checkpointed"] == ["healthy"]
            assert "sick" in response["failed"]
            assert "OSError" in response["failed"]["sick"]
            # Both streams keep serving.
            for stream in ("sick", "healthy"):
                factors = await dispatch(server, "factors", stream=stream)
                assert factors["ok"]
            health = await dispatch(server, "health")
            assert health["streams"]["degraded"] == ["sick"]
            # Graceful stop survives the sick stream too.
            await server.stop()

        asyncio.run(scenario())
        recovered = ServiceManager(ServiceConfig(checkpoint_root=root))
        report = recovered.recover()
        assert "healthy" in report["recovered"]


class TestWatchdog:
    def test_stalled_apply_is_flagged_and_clears(self):
        """A worker stuck in one apply past ``watchdog_stall_seconds`` is
        reported by ``health`` (which must answer lock-free, *during* the
        stall) and recovers once the apply completes."""
        config = ServiceConfig(
            watchdog_stall_seconds=0.08,
            fault_plan={
                "rules": [
                    {
                        "site": "worker.stall",
                        "kind": "delay",
                        "delay": 0.6,
                        # Queued item 1 is the warm chunk; the live chunk
                        # below is item 2.
                        "hits": [2],
                    }
                ]
            },
        )
        warm = warm_records(seed=69)
        chunk = live_chunks(1, seed=70)[0]

        async def scenario():
            # start() is needed here: the watchdog task (stalls_detected)
            # only runs on a started server.
            server = StreamingServer(ServiceManager(config))
            await server.start()
            await create_and_start(server, "s", warm)
            await dispatch(
                server, "ingest", stream="s", records=wire_records(chunk)
            )
            await asyncio.sleep(0.3)  # mid-stall: > threshold, < delay
            during = await dispatch(server, "health", stream="s")
            overall = await dispatch(server, "health")
            await dispatch(server, "flush", stream="s")
            after = await dispatch(server, "health", stream="s")
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return during, overall, after, factors

        during, overall, after, factors = asyncio.run(scenario())
        assert during["status"] == "stalled"
        assert during["stalled"] is True
        assert during["apply_busy_seconds"] > 0.08
        assert during["stalls_detected"] >= 1
        assert overall["status"] == "stalled"
        assert overall["streams"]["stalled"] == ["s"]
        assert after["status"] == "ok"
        assert after["stalled"] is False
        assert after["stalls_detected"] == 1  # episode counted once
        # The stalled chunk was still applied exactly once.
        reference = sequential_reference(warm, [chunk])
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))


class TestInjectedApplyFaults:
    def test_apply_fault_defers_error_and_keeps_worker_alive(self):
        """An exception injected at the apply site behaves exactly like any
        apply failure: deferred error on flush, worker alive, a re-send of
        the same chunk lands."""
        config = ServiceConfig(
            fault_plan={
                "rules": [{"site": "apply", "kind": "exception", "hits": [1]}]
            }
        )
        warm = warm_records(seed=71)
        chunk = live_chunks(1, seed=72)[0]

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            # The fault hits queued item 1 — the warm chunk itself.
            await dispatch(
                server,
                "create_stream",
                stream="s",
                config=tiny_config().to_dict(),
            )
            response = await dispatch(
                server, "ingest", stream="s", records=wire_records(warm)
            )
            assert response["ok"]
            flush = await dispatch(server, "flush", stream="s")
            assert len(flush["deferred_errors"]) == 1
            assert "InjectedFaultError" in flush["deferred_errors"][0]
            # The worker survived: re-send the lost chunk and go live.
            await dispatch(
                server, "ingest", stream="s", records=wire_records(warm)
            )
            await dispatch(server, "start_stream", stream="s")
            await dispatch(
                server, "ingest", stream="s", records=wire_records(chunk)
            )
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        reference = sequential_reference(warm, [chunk])
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))
