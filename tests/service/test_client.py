"""ServiceClient transport handling and retry policy, against a scripted
TCP stub.

The stub lets each test decide, per request line, whether the "server"
answers normally, answers with an error, sends garbage, or drops the
connection — the transport failures that are awkward to script through
the real server.  Policy under test:

* any transport failure poisons the connection (closed + reconnect on the
  next call) — a late response can never be mis-read as the answer to the
  next request (the desync bug);
* transport failures raise the dedicated ``connection`` code, distinct
  from server-side ``internal`` errors;
* a response hitting the size cap with no trailing newline is a clear
  truncated-response error, not a JSON parse error against half a line;
* ``overloaded`` retries for every op; ``connection`` retries only for
  safe (idempotent) ops — which includes ingest/advance iff they carry a
  ``seq``.
"""

from __future__ import annotations

import collections
import json
import socket
import threading

import pytest

from repro.exceptions import ServiceError
from repro.service.client import ServiceClient


class StubServer:
    """Scripted TCP peer: one scripted behaviour per incoming request.

    Script entries:
      ``("ok", fields)``   — answer ``{"ok": true, **fields}``
      ``("err", code)``    — answer ``{"ok": false, "error": code, ...}``
      ``("raw", data)``    — send ``data`` verbatim (bytes)
      ``("raw_close", data)`` — send ``data`` verbatim, then drop the connection
      ``("close",)``       — drop the connection without answering
    An exhausted script answers ``{"ok": true}``.
    """

    def __init__(self):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.script = collections.deque()
        self.requests: list[dict] = []
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while True:
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return  # listener closed: test over
            with conn:
                # The reader must be closed before conn: makefile() holds
                # the fd open, so conn.close() alone never sends FIN.
                with conn.makefile("rb") as reader:
                    self._run_script(conn, reader)

    def _run_script(self, conn, reader):
        for line in reader:
            self.requests.append(json.loads(line))
            entry = self.script.popleft() if self.script else ("ok", {})
            kind = entry[0]
            if kind == "close":
                return
            if kind == "raw_close":
                conn.sendall(entry[1])
                return
            if kind == "raw":
                conn.sendall(entry[1])
            elif kind == "err":
                conn.sendall(
                    (
                        json.dumps(
                            {
                                "ok": False,
                                "error": entry[1],
                                "message": "scripted",
                            }
                        )
                        + "\n"
                    ).encode()
                )
            else:
                conn.sendall(
                    (json.dumps({"ok": True, **entry[1]}) + "\n").encode()
                )

    def close(self):
        self.sock.close()


@pytest.fixture
def stub():
    server = StubServer()
    yield server
    server.close()


def fast_client(stub_server, **kwargs) -> ServiceClient:
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("backoff_base", 0.001)
    kwargs.setdefault("backoff_max", 0.01)
    kwargs.setdefault("seed", 0)
    return ServiceClient("127.0.0.1", stub_server.port, **kwargs)


CHUNK = [[[0, 0], 1.0, 1.0]]


class TestTransportFailures:
    def test_dropped_connection_raises_connection_code(self, stub):
        stub.script.append(("close",))
        with fast_client(stub) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert excinfo.value.code == "connection"
            # The connection was poisoned and closed...
            assert client._socket is None
            # ...and the next call transparently reconnects.
            assert client.ping()["ok"]
            assert client.reconnects == 1

    def test_truncated_response_is_a_clear_error(self, stub):
        # A response with no trailing newline (peer died mid-line, or the
        # line hit the client's readline cap) must not be half-parsed.
        stub.script.append(("raw_close", b'{"ok": true'))
        with fast_client(stub) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert excinfo.value.code == "connection"
            assert "truncated" in str(excinfo.value)
            assert client._socket is None

    def test_garbage_response_poisons_the_connection(self, stub):
        stub.script.append(("raw", b"!!not json!!\n"))
        with fast_client(stub) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.ping()
            assert excinfo.value.code == "connection"
            assert client._socket is None

    def test_server_error_codes_pass_through_untouched(self, stub):
        stub.script.append(("err", "unknown_stream"))
        with fast_client(stub) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.factors("ghost")
            assert excinfo.value.code == "unknown_stream"
            # A real server answer does not poison the connection.
            assert client._socket is not None


class TestRetryPolicy:
    def test_overloaded_is_retried_for_any_op(self, stub):
        stub.script.append(("err", "overloaded"))
        stub.script.append(("err", "overloaded"))
        stub.script.append(("ok", {"queued": 1}))
        with fast_client(stub, retries=5) as client:
            response = client.ingest("s", CHUNK)  # no seq needed
            assert response["queued"] == 1
            assert client.retries_performed == 2

    def test_seqless_ingest_is_not_connection_retried(self, stub):
        """No seq = a connection retry could double-apply: fail fast."""
        stub.script.append(("close",))
        with fast_client(stub, retries=5) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.ingest("s", CHUNK)
            assert excinfo.value.code == "connection"
            assert client.retries_performed == 0

    def test_ingest_with_seq_is_connection_retried(self, stub):
        stub.script.append(("close",))
        stub.script.append(("ok", {"queued": 1, "seq": 7, "duplicate": False}))
        with fast_client(stub, retries=5) as client:
            response = client.ingest("s", CHUNK, seq=7)
            assert response["seq"] == 7
            assert client.retries_performed == 1
            assert client.reconnects == 1
        # Both attempts carried the SAME seq: that is what makes the
        # retry safe (the real server deduplicates the re-send).
        sent = [r for r in stub.requests if r["op"] == "ingest"]
        assert [r["seq"] for r in sent] == [7, 7]

    def test_auto_seq_stamps_monotonic_per_stream(self, stub):
        with fast_client(stub, retries=3, auto_seq=True) as client:
            client.ingest("a", CHUNK)
            client.ingest("a", CHUNK)
            client.ingest("b", CHUNK)
            client.advance("a", 99.0)
        sent = [(r["op"], r["stream"], r["seq"]) for r in stub.requests]
        assert sent == [
            ("ingest", "a", 1),
            ("ingest", "a", 2),
            ("ingest", "b", 1),
            ("advance", "a", 3),
        ]

    def test_explicit_seq_advances_the_auto_counter(self, stub):
        with fast_client(stub, auto_seq=True) as client:
            client.ingest("a", CHUNK, seq=10)
            client.ingest("a", CHUNK)
        assert [r["seq"] for r in stub.requests] == [10, 11]

    def test_safe_ops_reconnect_and_retry(self, stub):
        stub.script.append(("close",))
        stub.script.append(("ok", {"pong": True}))
        with fast_client(stub, retries=2) as client:
            assert client.ping()["pong"]
            assert client.retries_performed == 1

    def test_unsafe_ops_are_not_connection_retried(self, stub):
        stub.script.append(("close",))
        with fast_client(stub, retries=5) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.create_stream("s", mode_sizes=[2], window_length=1,
                                     period=1.0, rank=1)
            assert excinfo.value.code == "connection"
            assert client.retries_performed == 0

    def test_non_retryable_codes_raise_immediately(self, stub):
        stub.script.append(("err", "bad_request"))
        with fast_client(stub, retries=5) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.flush("s")
            assert excinfo.value.code == "bad_request"
            assert client.retries_performed == 0

    def test_deadline_bounds_total_retry_time(self, stub):
        for _ in range(10):
            stub.script.append(("err", "overloaded"))
        with fast_client(
            stub, retries=100, backoff_base=0.5, deadline=0.01
        ) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.flush("s")
            assert excinfo.value.code == "overloaded"
            # The first backoff (0.5 s) alone would blow the 10 ms budget.
            assert client.retries_performed == 0

    def test_retries_zero_preserves_fail_fast(self, stub):
        stub.script.append(("err", "overloaded"))
        with fast_client(stub) as client:  # retries=0 default
            with pytest.raises(ServiceError) as excinfo:
                client.ingest("s", CHUNK)
            assert excinfo.value.code == "overloaded"
            assert client.retries_performed == 0
