"""Unit tests for the deterministic fault-injection layer.

The injector's whole value is *reproducibility*: the same plan must fire
the same faults at the same hits, per stream, regardless of process or
request interleaving — otherwise a chaos failure can never be replayed.
"""

from __future__ import annotations

import errno
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError, InjectedFaultError
from repro.service.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
)


class TestFaultRule:
    def test_defaults_per_site(self):
        assert FaultRule(site="checkpoint.write", hits=[1]).kind == "enospc"
        assert FaultRule(site="checkpoint.write", hits=[1]).stage == "begin"
        assert FaultRule(site="apply", hits=[1]).kind == "exception"
        assert (
            FaultRule(site="connection.reset", hits=[1]).stage == "response"
        )
        assert FaultRule(site="ingest.overload", hits=[1]).kind == "overload"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(site="nowhere", hits=[1]),
            dict(site="apply", kind="nonsense", hits=[1]),
            dict(site="checkpoint.write", stage="nonsense", hits=[1]),
            dict(site="apply", hits=[0]),
            dict(site="apply"),  # no trigger at all
            dict(site="apply", probability=1.5),
            dict(site="apply", hits=[1], limit=0),
            dict(site="worker.stall", kind="delay", hits=[1]),  # delay=0
            dict(site="apply", hits=[1], streams="not-a-list"),
        ],
    )
    def test_validation_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultRule(**kwargs)

    def test_matching_filters(self):
        rule = FaultRule(
            site="connection.reset",
            hits=[1],
            streams=["tenant-*"],
            ops=["ingest"],
            stage="response",
        )
        assert rule.matches("tenant-3", "ingest", None)
        assert rule.matches("tenant-3", "ingest", "response")
        assert not rule.matches("other", "ingest", None)
        assert not rule.matches(None, "ingest", None)
        assert not rule.matches("tenant-3", "flush", None)
        assert not rule.matches("tenant-3", None, None)
        assert not rule.matches("tenant-3", "ingest", "request")


class TestFaultPlan:
    def test_round_trips_through_json(self, tmp_path):
        plan = FaultPlan(
            seed=42,
            rules=(
                FaultRule(
                    site="checkpoint.write",
                    kind="enospc",
                    streams=("s*",),
                    stage="arrays",
                    hits=(1, 3),
                    limit=2,
                    message="disk full",
                ),
                FaultRule(site="connection.reset", probability=0.25),
            ),
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict())
        assert rebuilt == plan
        path = tmp_path / "plan.json"
        import json

        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_file(path) == plan

    def test_rejects_malformed_plans(self, tmp_path):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"bogus": 1})
        with pytest.raises(ConfigurationError):
            FaultPlan.from_dict({"rules": "nope"})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_file(bad)
        with pytest.raises(ConfigurationError):
            FaultPlan.from_file(tmp_path / "missing.json")


class TestFaultInjector:
    def test_explicit_hits_fire_exactly_there(self):
        plan = FaultPlan(
            rules=(FaultRule(site="apply", hits=(2, 4)),)
        )
        injector = FaultInjector(plan)
        fired = [
            injector.check("apply", stream="s") is not None for _ in range(6)
        ]
        assert fired == [False, True, False, True, False, False]

    def test_hits_are_counted_per_stream(self):
        """One stream's fault schedule must not depend on how other
        streams' requests interleave with it."""
        plan = FaultPlan(rules=(FaultRule(site="apply", hits=(2,)),))
        injector = FaultInjector(plan)
        # Interleaved: a, b, a, b — each stream fires on ITS second hit.
        results = [
            (stream, injector.check("apply", stream=stream) is not None)
            for stream in ("a", "b", "a", "b")
        ]
        assert results == [
            ("a", False),
            ("b", False),
            ("a", True),
            ("b", True),
        ]

    def test_probability_draws_are_reproducible(self):
        plan = FaultPlan(
            seed=7,
            rules=(FaultRule(site="connection.reset", probability=0.3),),
        )
        schedule_one = [
            FaultInjector(plan).check("connection.reset", stream="s")
            is not None
            for _ in range(1)
        ]
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        schedule_one = [
            first.check("connection.reset", stream="s") is not None
            for _ in range(50)
        ]
        schedule_two = [
            second.check("connection.reset", stream="s") is not None
            for _ in range(50)
        ]
        assert schedule_one == schedule_two
        assert any(schedule_one) and not all(schedule_one)
        # A different seed draws a different schedule.
        other = FaultInjector(
            FaultPlan(
                seed=8,
                rules=(FaultRule(site="connection.reset", probability=0.3),),
            )
        )
        schedule_other = [
            other.check("connection.reset", stream="s") is not None
            for _ in range(50)
        ]
        assert schedule_other != schedule_one

    def test_limit_caps_total_fires(self):
        plan = FaultPlan(
            rules=(FaultRule(site="apply", probability=1.0, limit=3),)
        )
        injector = FaultInjector(plan)
        fires = sum(
            injector.check("apply", stream="s") is not None for _ in range(10)
        )
        assert fires == 3
        assert injector.report()["fired_by_site"] == {"apply": 3}
        assert injector.report()["fired_by_rule"] == [3]

    def test_actions_raise_the_right_exceptions(self):
        injector = FaultInjector(
            FaultPlan(
                rules=(
                    FaultRule(site="checkpoint.write", kind="enospc", hits=(1,)),
                    FaultRule(site="checkpoint.write", kind="oserror", hits=(2,)),
                    FaultRule(site="apply", kind="exception", hits=(1,)),
                )
            )
        )
        action = injector.check("checkpoint.write", stream="s", stage="begin")
        with pytest.raises(OSError) as excinfo:
            action.raise_fault()
        assert excinfo.value.errno == errno.ENOSPC
        action = injector.check("checkpoint.write", stream="s", stage="begin")
        with pytest.raises(OSError) as excinfo:
            action.raise_fault()
        assert excinfo.value.errno != errno.ENOSPC
        action = injector.check("apply", stream="s")
        with pytest.raises(InjectedFaultError):
            action.raise_fault()

    def test_stage_filter_only_counts_matching_stage(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="checkpoint.write", stage="manifest", hits=(1,)
                ),
            )
        )
        injector = FaultInjector(plan)
        # A full write visits begin/arrays/manifest/commit; only the
        # manifest stage matches (and fires on its first visit).
        outcomes = {
            stage: injector.check("checkpoint.write", stream="s", stage=stage)
            for stage in ("begin", "arrays", "manifest", "commit")
        }
        assert outcomes["begin"] is None
        assert outcomes["arrays"] is None
        assert outcomes["manifest"] is not None
        assert outcomes["commit"] is None

    def test_checkpoint_write_hook_recovers_stream_id(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="checkpoint.write", streams=("victim",), hits=(1,)
                ),
            )
        )
        injector = FaultInjector(plan)
        # State dirs are <root>/<stream>/state; metadata dirs <root>/<stream>.
        with pytest.raises(OSError):
            injector.checkpoint_write_hook(
                Path("/tmp/root/victim/state"), "begin"
            )
        # Other streams sail through.
        injector.checkpoint_write_hook(Path("/tmp/root/other/state"), "begin")
        assert injector.report()["fired_by_site"] == {"checkpoint.write": 1}
