"""ServiceManager: admission, durability, recovery."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service.config import ServiceConfig
from repro.service.manager import ServiceManager

from helpers import live_chunks, tiny_config, warm_records


def populated_manager(service_config, n_streams=3, live=True) -> ServiceManager:
    manager = ServiceManager(service_config)
    for position in range(n_streams):
        session = manager.create_stream(f"tenant-{position}", tiny_config())
        session.ingest(warm_records(seed=position + 1))
        if live:
            session.start()
            for chunk in live_chunks(2, seed=position + 50):
                session.ingest(chunk)
    return manager


class TestAdmission:
    def test_create_get_drop(self, service_config, stream_config):
        manager = ServiceManager(service_config)
        session = manager.create_stream("a", stream_config)
        assert manager.get("a") is session
        assert "a" in manager and len(manager) == 1
        manager.drop_stream("a")
        assert "a" not in manager
        with pytest.raises(ServiceError) as excinfo:
            manager.get("a")
        assert excinfo.value.code == "unknown_stream"

    def test_duplicate_id_is_conflict(self, service_config, stream_config):
        manager = ServiceManager(service_config)
        manager.create_stream("a", stream_config)
        with pytest.raises(ServiceError) as excinfo:
            manager.create_stream("a", stream_config)
        assert excinfo.value.code == "conflict"

    @pytest.mark.parametrize(
        "stream_id", ["", "-leading-dash", "has space", "a/b", "x" * 129]
    )
    def test_malformed_ids_rejected(self, service_config, stream_config, stream_id):
        manager = ServiceManager(service_config)
        with pytest.raises(ServiceError) as excinfo:
            manager.create_stream(stream_id, stream_config)
        assert excinfo.value.code == "bad_request"

    def test_stream_cap_enforced(self, stream_config):
        manager = ServiceManager(ServiceConfig(max_streams=2))
        manager.create_stream("a", stream_config)
        manager.create_stream("b", stream_config)
        with pytest.raises(ServiceError) as excinfo:
            manager.create_stream("c", stream_config)
        assert excinfo.value.code == "stream_cap"
        manager.drop_stream("a")
        manager.create_stream("c", stream_config)  # freed slot is reusable


class TestDurability:
    def test_no_root_means_no_checkpoints(self, stream_config):
        manager = ServiceManager(ServiceConfig())
        manager.create_stream("a", stream_config)
        assert manager.stream_directory("a") is None
        assert manager.checkpoint_stream("a") is None
        assert manager.checkpoint_all() == []

    def test_checkpoint_all_then_recover(self, service_config):
        manager = populated_manager(service_config, n_streams=3)
        assert manager.checkpoint_all() == [
            "tenant-0",
            "tenant-1",
            "tenant-2",
        ]
        fresh = ServiceManager(service_config)
        report = fresh.recover()
        assert report["recovered"] == ["tenant-0", "tenant-1", "tenant-2"]
        assert report["failed"] == {}
        for stream_id in manager.stream_ids:
            original = manager.get(stream_id).factors()["factors"]
            recovered = fresh.get(stream_id).factors()["factors"]
            for fa, fb in zip(original, recovered):
                assert np.array_equal(np.array(fa), np.array(fb))

    def test_recover_skips_damaged_stream_but_keeps_the_rest(
        self, service_config
    ):
        manager = populated_manager(service_config, n_streams=3)
        manager.checkpoint_all()
        damaged = manager.stream_directory("tenant-1")
        (damaged / "meta.json").write_text("{torn write")
        fresh = ServiceManager(service_config)
        report = fresh.recover()
        assert report["recovered"] == ["tenant-0", "tenant-2"]
        assert "tenant-1" in report["failed"]
        assert "tenant-1" not in fresh

    def test_recover_rejects_renamed_directory(self, service_config):
        manager = populated_manager(service_config, n_streams=1)
        manager.checkpoint_all()
        directory = manager.stream_directory("tenant-0")
        directory.rename(directory.with_name("impostor"))
        fresh = ServiceManager(service_config)
        report = fresh.recover()
        assert report["recovered"] == []
        assert "does not match" in report["failed"]["impostor"]

    def test_recover_respects_the_stream_cap(self, service_config):
        manager = populated_manager(service_config, n_streams=3, live=False)
        manager.checkpoint_all()
        capped = ServiceConfig(
            max_streams=2,
            queue_limit=service_config.queue_limit,
            checkpoint_root=service_config.checkpoint_root,
        )
        fresh = ServiceManager(capped)
        report = fresh.recover()
        assert len(report["recovered"]) == 2
        assert len(report["failed"]) == 1
        assert "stream cap" in next(iter(report["failed"].values()))

    def test_recover_without_root_is_empty(self, stream_config):
        manager = ServiceManager(ServiceConfig())
        assert manager.recover() == {"recovered": [], "failed": {}}

    def test_drop_stream_can_delete_state(self, service_config):
        manager = populated_manager(service_config, n_streams=1)
        manager.checkpoint_all()
        directory = manager.stream_directory("tenant-0")
        assert directory.is_dir()
        manager.drop_stream("tenant-0", delete_state=True)
        assert not directory.exists()

    def test_describe_lists_every_stream(self, service_config):
        manager = populated_manager(service_config, n_streams=2)
        rows = manager.describe()
        assert [row["stream"] for row in rows] == ["tenant-0", "tenant-1"]
        assert all(row["phase"] == "live" for row in rows)
        assert all(row["events_applied"] > 0 for row in rows)
