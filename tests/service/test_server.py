"""StreamingServer behaviour, exercised in-process through ``_dispatch``.

No TCP here: these tests drive the server's op dispatcher directly inside
``asyncio.run`` so the concurrency model (bounded queues, per-stream locks,
worker tasks) runs for real while failures stay easy to localise.  The
socket layer gets its own end-to-end coverage in ``test_service_e2e.py``.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service.config import ServiceConfig
from repro.service.manager import ServiceManager
from repro.service.server import StreamingServer
from repro.service.session import StreamSession

from helpers import live_chunks, tiny_config, warm_records, wire_records


def sequential_reference(warm, chunks) -> StreamSession:
    """The ground truth: the same chunk sequence applied alone, in order."""
    session = StreamSession("reference", tiny_config())
    session.ingest(warm)
    session.start()
    for chunk in chunks:
        session.ingest(chunk)
    return session


async def dispatch(server, op, **fields):
    return await server._dispatch({"op": op, **fields})


async def create_and_start(server, stream_id, warm):
    response = await dispatch(
        server,
        "create_stream",
        stream=stream_id,
        config=tiny_config().to_dict(),
    )
    assert response["ok"], response
    response = await dispatch(
        server, "ingest", stream=stream_id, records=wire_records(warm)
    )
    assert response["ok"], response
    response = await dispatch(server, "start_stream", stream=stream_id)
    assert response["ok"], response


class TestOps:
    def test_ping_streams_and_unknown_op(self):
        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            response = await dispatch(server, "ping")
            assert response["ok"] and response["pong"]
            with pytest.raises(ServiceError) as excinfo:
                await dispatch(server, "nonsense")
            assert excinfo.value.code == "bad_request"
            with pytest.raises(ServiceError) as excinfo:
                await dispatch(server, "factors", stream="ghost")
            assert excinfo.value.code == "unknown_stream"

        asyncio.run(scenario())

    def test_dispatch_safely_maps_errors_to_codes(self):
        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            # Broken JSON and wrong shapes never raise, they answer.
            response = await server._dispatch_safely(b"{not json}\n")
            assert not response["ok"] and response["error"] == "bad_request"
            response = await server._dispatch_safely(b'{"no_op": 1}\n')
            assert not response["ok"] and response["error"] == "bad_request"
            # A config error inside an op (unknown key) maps to bad_request.
            response = await server._dispatch_safely(
                json.dumps(
                    {"op": "create_stream", "stream": "a", "config": {"bogus": 1}}
                ).encode() + b"\n"
            )
            assert not response["ok"] and response["error"] == "bad_request"

        asyncio.run(scenario())

    def test_full_lifecycle_queries(self):
        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            warm = warm_records(seed=3)
            chunks = live_chunks(2, seed=4)
            await create_and_start(server, "s", warm)
            for chunk in chunks:
                await dispatch(
                    server, "ingest", stream="s", records=wire_records(chunk)
                )
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            factors = await dispatch(server, "factors", stream="s")
            fitness = await dispatch(server, "fitness", stream="s")
            anomalies = await dispatch(server, "anomalies", stream="s", k=3)
            stats = await dispatch(server, "stats", stream="s")
            telemetry = await dispatch(server, "telemetry", stream="s")
            rows = (await dispatch(server, "streams"))["streams"]
            await server.stop()
            return chunks, warm, factors, fitness, anomalies, stats, telemetry, rows

        chunks, warm, factors, fitness, anomalies, stats, telemetry, rows = (
            asyncio.run(scenario())
        )
        reference = sequential_reference(warm, chunks)
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))
        assert fitness["fitness"] == reference.fitness()["fitness"]
        assert anomalies["scored"] == reference._detector.count
        assert stats["phase"] == "live"
        assert telemetry["telemetry"]["records_ingested"] == 30 + 2 * 8
        assert rows[0]["stream"] == "s" and rows[0]["queue_depth"] == 0


class TestConcurrentTenants:
    N_STREAMS = 6

    def test_concurrent_streams_match_sequential_runs(self):
        """The headline guarantee: N tenants ingesting at once, with queries
        interleaved, end bit-identical to N sequential single-tenant runs."""
        warms = {
            f"t{i}": warm_records(seed=10 + i) for i in range(self.N_STREAMS)
        }
        chunk_sets = {
            f"t{i}": live_chunks(4, seed=40 + i) for i in range(self.N_STREAMS)
        }

        async def tenant(server, stream_id):
            await create_and_start(server, stream_id, warms[stream_id])
            for chunk in chunk_sets[stream_id]:
                response = await dispatch(
                    server,
                    "ingest",
                    stream=stream_id,
                    records=wire_records(chunk),
                )
                assert response["ok"], response
                # Interleave reads with everyone else's writes.
                fitness = await dispatch(server, "fitness", stream=stream_id)
                assert 0.0 <= fitness["fitness"] <= 1.0
                await asyncio.sleep(0)
            flush = await dispatch(server, "flush", stream=stream_id)
            assert flush["deferred_errors"] == []

        async def scenario():
            server = StreamingServer(
                ServiceManager(ServiceConfig(max_streams=self.N_STREAMS))
            )
            await asyncio.gather(
                *(tenant(server, stream_id) for stream_id in warms)
            )
            results = {
                stream_id: await dispatch(server, "factors", stream=stream_id)
                for stream_id in warms
            }
            detectors = {
                stream_id: server.manager.get(stream_id)._detector.state_dict()
                for stream_id in warms
            }
            await server.stop()
            return results, detectors

        results, detectors = asyncio.run(scenario())
        for stream_id in warms:
            reference = sequential_reference(
                warms[stream_id], chunk_sets[stream_id]
            )
            for fa, fb in zip(
                results[stream_id]["factors"], reference.factors()["factors"]
            ):
                assert np.array_equal(np.array(fa), np.array(fb))
            assert detectors[stream_id] == reference._detector.state_dict()

    def test_soak_thousand_streams(self, tmp_path):
        """Admission, ingestion, queries, checkpoint and recovery at 1,000
        concurrent streams, with the watchdog running and per-stream memory
        structurally bounded.

        At this scale the full-factor cross-check is sampled (every 50th
        stream, deterministically); the structural invariants — window
        occupancy capped by the window's cell count, no buffered or pending
        records left behind, drained queues, zero watchdog stalls — are
        asserted on *every* stream, because those are the bounds that keep
        per-stream memory flat as tenancy grows.
        """
        n_streams = 1000
        root = tmp_path / "state"
        config = ServiceConfig(
            max_streams=n_streams,
            checkpoint_root=str(root),
            watchdog_stall_seconds=30.0,
        )
        warms = {f"s{i:04d}": warm_records(seed=100 + i) for i in range(n_streams)}
        chunk_sets = {
            f"s{i:04d}": live_chunks(1, seed=3000 + i) for i in range(n_streams)
        }
        sample_ids = sorted(warms)[::50]  # 20 streams, deterministic

        async def tenant(server, stream_id):
            await create_and_start(server, stream_id, warms[stream_id])
            for chunk in chunk_sets[stream_id]:
                await dispatch(
                    server, "ingest", stream=stream_id, records=wire_records(chunk)
                )
            await dispatch(server, "flush", stream=stream_id)

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            # The in-process harness never calls server.start() (no TCP), so
            # start the watchdog the way start() does: the soak must prove
            # it stays quiet under full load, not merely that it is off.
            server._watchdog_task = asyncio.get_running_loop().create_task(
                server._watchdog_loop(config.watchdog_stall_seconds)
            )
            await asyncio.gather(
                *(tenant(server, stream_id) for stream_id in warms)
            )
            ping = await dispatch(server, "ping")
            assert ping["streams"] == n_streams
            tiny = tiny_config()
            window_cells = int(
                np.prod(tiny.mode_sizes) * tiny.window_length
            )
            for stream_id in warms:
                stats = await dispatch(server, "stats", stream=stream_id)
                assert stats["phase"] == "live"
                assert 0 < stats["window_nnz"] <= window_cells
                assert stats["pending_records"] == 0
                assert stats["buffered_records"] == 0
                telemetry = await dispatch(
                    server, "telemetry", stream=stream_id
                )
                assert telemetry["telemetry"]["stalls_detected"] == 0
            for row in (await dispatch(server, "streams"))["streams"]:
                assert row["queue_depth"] == 0
                assert not row["degraded"]
            assert all(
                not worker.stalled for worker in server._workers.values()
            )
            written = await dispatch(server, "checkpoint_all")
            assert len(written["checkpointed"]) == n_streams
            factors = {
                stream_id: (await dispatch(server, "factors", stream=stream_id))[
                    "factors"
                ]
                for stream_id in sample_ids
            }
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        # A fresh manager (fresh process in real life) recovers all 1,000.
        recovered = ServiceManager(config)
        report = recovered.recover()
        assert report["failed"] == {}
        assert len(report["recovered"]) == n_streams
        for stream_id in sample_ids:
            for fa, fb in zip(
                factors[stream_id],
                recovered.get(stream_id).factors()["factors"],
            ):
                assert np.array_equal(np.array(fa), np.array(fb))


class TestBackpressure:
    def test_overload_is_rejected_not_dropped(self):
        """A full queue answers ``overloaded``; retrying the same chunk later
        converges on exactly the sequential-reference state."""
        warm = warm_records(seed=5)
        chunks = live_chunks(6, seed=6)

        async def scenario():
            server = StreamingServer(
                ServiceManager(ServiceConfig(queue_limit=2))
            )
            await create_and_start(server, "s", warm)
            await dispatch(server, "flush", stream="s")
            # Synchronous put_nowait calls: the worker task never runs between
            # them, so the queue fills deterministically at queue_limit=2.
            accepted, rejected = [], []
            for chunk in chunks:
                request = {"records": wire_records(chunk), "op": "ingest"}
                try:
                    server._op_ingest("s", request)
                    accepted.append(chunk)
                except ServiceError as error:
                    assert error.code == "overloaded"
                    rejected.append(chunk)
            assert len(accepted) == 2
            assert len(rejected) == 4
            telemetry = await dispatch(server, "telemetry", stream="s")
            assert telemetry["telemetry"]["overload_rejections"] == 4
            # Drain, then retry every rejected chunk in order: nothing lost.
            # The client owns the retry — on another overload, flush and
            # resend (the queue stays tiny on purpose).
            await dispatch(server, "flush", stream="s")
            for chunk in rejected:
                while True:
                    try:
                        response = await dispatch(
                            server,
                            "ingest",
                            stream="s",
                            records=wire_records(chunk),
                        )
                    except ServiceError as error:
                        assert error.code == "overloaded"
                        await dispatch(server, "flush", stream="s")
                        continue
                    assert response["ok"], response
                    break
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        reference = sequential_reference(warm, chunks)
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_deferred_error_surfaces_on_flush(self):
        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            await create_and_start(server, "s", warm_records(seed=7))
            chunk = live_chunks(1, seed=8)[0]
            await dispatch(
                server, "ingest", stream="s", records=wire_records(chunk)
            )
            # Behind the clock: accepted into the queue, fails on apply.
            stale = [[[0, 0], 1.0, 0.5]]
            response = await dispatch(
                server, "ingest", stream="s", records=stale
            )
            assert response["ok"]  # acked before applied, by design
            flush = await dispatch(server, "flush", stream="s")
            assert len(flush["deferred_errors"]) == 1
            assert "conflict" in flush["deferred_errors"][0]
            # Errors are delivered once, then cleared.
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return chunk, factors

        chunk, factors = asyncio.run(scenario())
        # The failed chunk left no partial state behind.
        reference = sequential_reference(warm_records(seed=7), [chunk])
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))


class TestCheckpointing:
    def test_count_triggered_checkpoints(self, tmp_path):
        root = tmp_path / "state"
        config = ServiceConfig(checkpoint_root=str(root), checkpoint_events=10)

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "s", warm_records(seed=9))
            for chunk in live_chunks(4, seed=10):
                await dispatch(
                    server, "ingest", stream="s", records=wire_records(chunk)
                )
            await dispatch(server, "flush", stream="s")
            telemetry = await dispatch(server, "telemetry", stream="s")
            written = telemetry["telemetry"]["checkpoints_written"]
            session = server.manager.get("s")
            # stop() adds the final graceful checkpoint.
            await server.stop()
            return written, session.telemetry.checkpoints_written

        mid_run, total = asyncio.run(scenario())
        assert mid_run >= 1  # the worker checkpointed while serving
        assert total > mid_run  # graceful stop wrote one more
        recovered = ServiceManager(config)
        assert recovered.recover()["recovered"] == ["s"]

    def test_explicit_checkpoint_op(self, tmp_path):
        config = ServiceConfig(checkpoint_root=str(tmp_path / "state"))

        async def scenario():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "s", warm_records(seed=11))
            response = await dispatch(server, "checkpoint", stream="s")
            await server.stop()
            return response

        response = asyncio.run(scenario())
        assert response["ok"]
        assert response["path"] is not None
        assert (tmp_path / "state" / "s" / "meta.json").is_file()


class TestIdempotentIngest:
    def test_duplicate_seq_is_acked_not_reapplied(self):
        warm = warm_records(seed=80)
        chunk = live_chunks(1, seed=81)[0]

        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            await create_and_start(server, "s", warm)
            first = await dispatch(
                server, "ingest", stream="s",
                records=wire_records(chunk), seq=1,
            )
            assert first["ok"] and first["duplicate"] is False
            assert first["seq"] == 1
            await dispatch(server, "flush", stream="s")
            # The retry after an ambiguous failure: same seq, same chunk.
            again = await dispatch(
                server, "ingest", stream="s",
                records=wire_records(chunk), seq=1,
            )
            assert again["ok"] and again["duplicate"] is True
            assert again["queued"] == 0
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            telemetry = await dispatch(server, "telemetry", stream="s")
            assert telemetry["telemetry"]["duplicates_skipped"] == 1
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        # Applied exactly once: bit-identical to the single-send reference.
        reference = sequential_reference(warm, [chunk])
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_enqueued_but_unapplied_seq_also_deduplicates(self):
        """The dedup window covers acked-but-not-yet-applied chunks, not
        just the applied high-water mark."""
        warm = warm_records(seed=82)
        chunks = live_chunks(2, seed=83)

        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            await create_and_start(server, "s", warm)
            await dispatch(server, "flush", stream="s")
            # Synchronous enqueues: the worker never runs between them.
            server._op_ingest(
                "s", {"op": "ingest", "records": wire_records(chunks[0]), "seq": 1}
            )
            server._op_ingest(
                "s", {"op": "ingest", "records": wire_records(chunks[1]), "seq": 2}
            )
            duplicate = server._op_ingest(
                "s", {"op": "ingest", "records": wire_records(chunks[1]), "seq": 2}
            )
            assert duplicate["duplicate"] is True and duplicate["queued"] == 0
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        reference = sequential_reference(warm, chunks)
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_non_monotonic_seq_conflicts(self):
        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            await create_and_start(server, "s", warm_records(seed=84))
            await dispatch(server, "flush", stream="s")
            chunk = live_chunks(1, seed=85)[0]
            # Gaps are allowed (a retried client may have skipped seqs)...
            server._op_ingest(
                "s", {"op": "ingest", "records": wire_records(chunk), "seq": 5}
            )
            # ...but a seq below the accepted high-water that is NOT a
            # known duplicate would reorder the stream: refused.
            with pytest.raises(ServiceError) as excinfo:
                server._op_ingest(
                    "s",
                    {"op": "ingest", "records": wire_records(chunk), "seq": 3},
                )
            assert excinfo.value.code == "conflict"
            await dispatch(server, "flush", stream="s")
            await server.stop()

        asyncio.run(scenario())

    def test_seq_validation(self):
        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            await create_and_start(server, "s", warm_records(seed=86))
            chunk = wire_records(live_chunks(1, seed=87)[0])
            for bad in (0, -3, "nope"):
                with pytest.raises(ServiceError) as excinfo:
                    await dispatch(
                        server, "ingest", stream="s", records=chunk, seq=bad
                    )
                assert excinfo.value.code == "bad_request"
            await server.stop()

        asyncio.run(scenario())

    def test_failed_apply_frees_the_seq_for_retry(self):
        """A seq whose chunk failed to apply must not poison the retry:
        the client fixes the payload and re-sends the same seq."""
        warm = warm_records(seed=88)
        good = live_chunks(1, seed=89)[0]

        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            await create_and_start(server, "s", warm)
            stale = [[[0, 0], 1.0, 0.5]]  # behind the clock: apply fails
            response = await dispatch(
                server, "ingest", stream="s", records=stale, seq=1
            )
            assert response["ok"]  # acked before applied, by design
            flush = await dispatch(server, "flush", stream="s")
            assert len(flush["deferred_errors"]) == 1
            retry = await dispatch(
                server, "ingest", stream="s",
                records=wire_records(good), seq=1,
            )
            assert retry["ok"] and retry["duplicate"] is False
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return factors

        factors = asyncio.run(scenario())
        reference = sequential_reference(warm, [good])
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_seq_high_water_survives_checkpoint_and_recovery(self, tmp_path):
        """The applied high-water mark is part of the checkpoint: after a
        crash the mark rolls back WITH the state, so exactly the chunks
        whose effects were lost are re-applied on retry."""
        config = ServiceConfig(checkpoint_root=str(tmp_path / "state"))
        warm = warm_records(seed=90)
        chunks = live_chunks(2, seed=91)

        async def phase_one():
            server = StreamingServer(ServiceManager(config))
            await create_and_start(server, "s", warm)
            await dispatch(
                server, "ingest", stream="s",
                records=wire_records(chunks[0]), seq=1,
            )
            await dispatch(server, "flush", stream="s")
            await dispatch(server, "checkpoint", stream="s")
            # Applied but NOT checkpointed: lost by the simulated crash.
            await dispatch(
                server, "ingest", stream="s",
                records=wire_records(chunks[1]), seq=2,
            )
            await dispatch(server, "flush", stream="s")
            # Simulated SIGKILL: no graceful stop, no final checkpoint.
            for worker in server._workers.values():
                await worker.stop()
            await server._writer.stop()

        asyncio.run(phase_one())

        async def phase_two():
            manager = ServiceManager(config)
            report = manager.recover()
            assert report["recovered"] == ["s"]
            server = StreamingServer(manager)
            # seq 1 was checkpointed: a retry is a duplicate.
            duplicate = await dispatch(
                server, "ingest", stream="s",
                records=wire_records(chunks[0]), seq=1,
            )
            assert duplicate["duplicate"] is True
            # seq 2's effects were lost with the crash — the mark rolled
            # back with the state, so the retry is APPLIED, not skipped.
            retry = await dispatch(
                server, "ingest", stream="s",
                records=wire_records(chunks[1]), seq=2,
            )
            assert retry["duplicate"] is False
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            factors = await dispatch(server, "factors", stream="s")
            await server.stop()
            return factors

        factors = asyncio.run(phase_two())
        reference = sequential_reference(warm, chunks)
        for fa, fb in zip(factors["factors"], reference.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_advance_carries_seq_too(self):
        async def scenario():
            server = StreamingServer(ServiceManager(ServiceConfig()))
            await create_and_start(server, "s", warm_records(seed=92))
            await dispatch(server, "flush", stream="s")
            stats = await dispatch(server, "stats", stream="s")
            target = stats["clock"] + 5.0
            first = await dispatch(
                server, "advance", stream="s", time=target, seq=1
            )
            assert first["duplicate"] is False
            again = await dispatch(
                server, "advance", stream="s", time=target, seq=1
            )
            assert again["duplicate"] is True
            flush = await dispatch(server, "flush", stream="s")
            assert flush["deferred_errors"] == []
            assert flush["clock"] == target
            await server.stop()

        asyncio.run(scenario())
