"""End-to-end service tests over real TCP, against a subprocess server.

Covers the full acceptance loop: start the server, ingest, query,
checkpoint, kill (gracefully and with SIGKILL), restart, and verify every
stream resumes from its last checkpoint with bit-identical factors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ServiceError

from helpers import TINY_KWARGS, live_chunks, tiny_config, warm_records, wire_records


def feed_stream(client, stream_id, seed, n_chunks=2):
    client.create_stream(stream_id, **tiny_config().to_dict())
    client.ingest(stream_id, wire_records(warm_records(seed=seed)))
    client.start_stream(stream_id)
    for chunk in live_chunks(n_chunks, seed=seed + 100):
        client.ingest(stream_id, wire_records(chunk))
    flush = client.flush(stream_id)
    assert flush["deferred_errors"] == []


class TestOverTcp:
    def test_lifecycle_ingest_query(self, launch):
        server = launch()
        with server.client() as client:
            assert client.ping()["pong"]
            feed_stream(client, "taxi", seed=21)
            factors = client.factors("taxi")
            assert len(factors["factors"]) == 3
            fitness = client.fitness("taxi")
            assert 0.0 <= fitness["fitness"] <= 1.0
            anomalies = client.anomalies("taxi", k=5)
            assert anomalies["scored"] > 0
            telemetry = client.telemetry("taxi")["telemetry"]
            assert telemetry["records_ingested"] == 30 + 2 * 8
            assert client.stats("taxi")["phase"] == "live"
            rows = client.streams()["streams"]
            assert rows[0]["stream"] == "taxi"
            with pytest.raises(ServiceError) as excinfo:
                client.factors("ghost")
            assert excinfo.value.code == "unknown_stream"
            client.shutdown()
        assert server.wait() == 0

    def test_graceful_restart_resumes_bit_exactly(self, launch, tmp_path):
        root = str(tmp_path / "state")
        server = launch("--checkpoint-root", root)
        with server.client() as client:
            for position in range(3):
                feed_stream(client, f"tenant-{position}", seed=30 + position)
            before = {
                f"tenant-{position}": client.factors(f"tenant-{position}")
                for position in range(3)
            }
            detectors_before = {
                stream: client.anomalies(stream, k=50) for stream in before
            }
            fitness_before = {
                stream: client.fitness(stream)["fitness"] for stream in before
            }
            client.shutdown()  # graceful: checkpoints everything
        assert server.wait() == 0

        restarted = launch("--checkpoint-root", root)
        with restarted.client() as client:
            assert client.ping()["streams"] == 3
            for stream, factors in before.items():
                after = client.factors(stream)
                for fa, fb in zip(factors["factors"], after["factors"]):
                    # JSON round-trips floats exactly: bit-equal comparison.
                    assert np.array_equal(np.array(fa), np.array(fb))
                assert client.anomalies(stream, k=50) == detectors_before[stream]
                # Restore recomputes the window norm exactly; fitness may
                # move by float-drift noise only.
                assert client.fitness(stream)["fitness"] == pytest.approx(
                    fitness_before[stream], abs=1e-12
                )
            # The recovered streams keep ingesting.
            extra = live_chunks(3, seed=130)[2]
            client.ingest("tenant-0", wire_records(extra))
            assert client.flush("tenant-0")["deferred_errors"] == []
            client.shutdown()
        assert restarted.wait() == 0

    def test_sigkill_recovers_from_last_checkpoint(self, launch, tmp_path):
        root = str(tmp_path / "state")
        server = launch("--checkpoint-root", root)
        with server.client() as client:
            for position in range(2):
                feed_stream(client, f"tenant-{position}", seed=40 + position)
            client.checkpoint_all()
            checkpointed = {
                f"tenant-{position}": client.factors(f"tenant-{position}")
                for position in range(2)
            }
            # Post-checkpoint work that the hard kill will throw away.
            lost = live_chunks(3, seed=140)[2]
            client.ingest("tenant-0", wire_records(lost))
            client.flush("tenant-0")
        server.kill()

        restarted = launch("--checkpoint-root", root)
        with restarted.client() as client:
            assert client.ping()["streams"] == 2
            for stream, factors in checkpointed.items():
                after = client.factors(stream)
                for fa, fb in zip(factors["factors"], after["factors"]):
                    assert np.array_equal(np.array(fa), np.array(fb))
            # The lost chunk can simply be re-sent: the recovered clock is
            # the checkpoint's, so the records are not behind it.
            client.ingest("tenant-0", wire_records(lost))
            assert client.flush("tenant-0")["deferred_errors"] == []
            client.shutdown()
        assert restarted.wait() == 0

    def test_count_triggered_checkpoints_limit_data_loss(self, launch, tmp_path):
        root = str(tmp_path / "state")
        server = launch(
            "--checkpoint-root", root, "--checkpoint-events", "10"
        )
        with server.client() as client:
            feed_stream(client, "s", seed=50, n_chunks=4)
            telemetry = client.telemetry("s")["telemetry"]
            # The server checkpointed on its own while serving.
            assert telemetry["checkpoints_written"] >= 1
        server.kill()  # no graceful checkpoint

        restarted = launch("--checkpoint-root", root)
        with restarted.client() as client:
            stats = client.stats("s")
            assert stats["phase"] == "live"
            assert stats["events_applied"] > 0
            client.shutdown()
        assert restarted.wait() == 0
