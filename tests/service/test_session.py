"""StreamSession: lifecycle, validation, determinism, durability."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CheckpointError, ConfigurationError, ServiceError
from repro.service.config import StreamConfig
from repro.service.session import StreamSession
from repro.stream.events import StreamRecord

from helpers import live_chunks, tiny_config, warm_records


def live_session(seed=1, chunk_seed=2, n_chunks=2) -> StreamSession:
    session = StreamSession("s", tiny_config())
    session.ingest(warm_records(seed))
    session.start()
    for chunk in live_chunks(n_chunks, seed=chunk_seed):
        session.ingest(chunk)
    return session


class TestConfig:
    def test_round_trips_through_dict(self, stream_config):
        assert StreamConfig.from_dict(stream_config.to_dict()) == stream_config

    def test_unknown_keys_rejected(self, stream_config):
        payload = stream_config.to_dict()
        payload["raank"] = 5
        with pytest.raises(ConfigurationError, match="raank"):
            StreamConfig.from_dict(payload)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"mode_sizes": ()},
            {"mode_sizes": (4, 0)},
            {"window_length": 0},
            {"period": -1.0},
            {"rank": 0},
            {"method": "definitely_not_registered"},
            {"als_iterations": 0},
            {"batch_window": -0.5},
        ],
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigurationError):
            tiny_config(**overrides)


class TestLifecycle:
    def test_new_session_buffers(self, stream_config):
        session = StreamSession("s", stream_config)
        assert not session.is_live
        accepted = session.ingest(warm_records())
        assert accepted == 30
        assert session.stats()["phase"] == "buffering"
        assert session.stats()["buffered_records"] == 30

    def test_queries_need_a_live_stream(self, stream_config):
        session = StreamSession("s", stream_config)
        for query in (session.factors, session.fitness, session.anomalies):
            with pytest.raises(ServiceError) as excinfo:
                query()
            assert excinfo.value.code == "conflict"

    def test_start_goes_live_and_catches_up(self):
        session = StreamSession("s", tiny_config())
        session.ingest(warm_records())
        # One record beyond the initial window: replayed during start().
        session.ingest([StreamRecord(indices=(0, 0), value=1.0, time=16.0)])
        outcome = session.start()
        assert session.is_live
        assert outcome["start_time"] == pytest.approx(15.0)
        assert outcome["clock"] >= 16.0
        assert session.stats()["n_updates"] > 0

    def test_start_without_records_is_conflict(self, stream_config):
        session = StreamSession("s", stream_config)
        with pytest.raises(ServiceError) as excinfo:
            session.start()
        assert excinfo.value.code == "conflict"

    def test_double_start_is_conflict(self):
        session = live_session()
        with pytest.raises(ServiceError) as excinfo:
            session.start()
        assert excinfo.value.code == "conflict"

    def test_queries_on_live_stream(self):
        session = live_session()
        factors = session.factors()
        assert len(factors["factors"]) == 3  # 2 categorical modes + time
        assert np.asarray(factors["factors"][0]).shape == (4, 2)
        assert 0.0 <= session.fitness()["fitness"] <= 1.0
        scoreboard = session.anomalies(k=5)
        assert scoreboard["scored"] > 0
        assert len(scoreboard["anomalies"]) <= 5

    def test_advance_moves_the_clock(self):
        session = live_session()
        before = session.clock
        session.advance(before + 20.0)
        assert session.clock == before + 20.0
        with pytest.raises(ServiceError) as excinfo:
            session.advance(before)  # backwards
        assert excinfo.value.code == "conflict"

    def test_telemetry_counts_work(self):
        session = live_session(n_chunks=2)
        telemetry = session.telemetry_snapshot()
        assert telemetry["records_ingested"] == 30 + 2 * 8
        assert telemetry["chunks_applied"] >= 2
        assert telemetry["events_applied"] > 0
        session.fitness()
        assert session.telemetry_snapshot()["queries_served"] >= 1


class TestValidation:
    @pytest.mark.parametrize(
        ("record", "code"),
        [
            (StreamRecord(indices=(0, 0, 0), value=1.0, time=1.0), "bad_request"),
            (StreamRecord(indices=(9, 0), value=1.0, time=1.0), "bad_request"),
        ],
    )
    def test_malformed_records_rejected_while_buffering(
        self, stream_config, record, code
    ):
        session = StreamSession("s", stream_config)
        with pytest.raises(ServiceError) as excinfo:
            session.ingest([record])
        assert excinfo.value.code == code
        assert session.stats()["buffered_records"] == 0  # nothing kept

    def test_time_regression_is_conflict(self, stream_config):
        session = StreamSession("s", stream_config)
        session.ingest([StreamRecord(indices=(0, 0), value=1.0, time=10.0)])
        with pytest.raises(ServiceError) as excinfo:
            session.ingest([StreamRecord(indices=(0, 0), value=1.0, time=9.0)])
        assert excinfo.value.code == "conflict"

    def test_live_rejection_leaves_state_untouched(self):
        session = live_session()
        factors_before = [np.array(f) for f in session.factors()["factors"]]
        clock_before = session.clock
        with pytest.raises(ServiceError):
            session.ingest(
                [StreamRecord(indices=(0, 0), value=1.0, time=clock_before - 1.0)]
            )
        assert session.clock == clock_before
        for before, after in zip(
            factors_before, session.factors()["factors"]
        ):
            assert np.array_equal(before, np.array(after))


class TestDeterminism:
    def test_same_chunk_sequence_is_bit_identical(self):
        a = live_session(seed=1, chunk_seed=9, n_chunks=3)
        b = live_session(seed=1, chunk_seed=9, n_chunks=3)
        for fa, fb in zip(a.factors()["factors"], b.factors()["factors"]):
            assert np.array_equal(np.array(fa), np.array(fb))
        assert a._detector.state_dict() == b._detector.state_dict()
        assert a.fitness()["fitness"] == b.fitness()["fitness"]


class TestDurability:
    def test_buffering_session_round_trips(self, stream_config, tmp_path):
        session = StreamSession("buf", stream_config)
        session.ingest(warm_records())
        session.save(tmp_path / "buf")
        restored = StreamSession.load(tmp_path / "buf")
        assert not restored.is_live
        assert restored.clock == session.clock
        # The restored buffer starts the identical stream.
        restored.start()
        session.start()
        for fa, fb in zip(
            session.factors()["factors"], restored.factors()["factors"]
        ):
            assert np.array_equal(np.array(fa), np.array(fb))

    def test_live_session_round_trips_and_continues(self, tmp_path):
        session = live_session(n_chunks=2)
        session.save(tmp_path / "s")
        restored = StreamSession.load(tmp_path / "s")
        assert restored.is_live
        assert restored.clock == session.clock
        assert restored._detector.state_dict() == session._detector.state_dict()
        for fa, fb in zip(
            session.factors()["factors"], restored.factors()["factors"]
        ):
            assert np.array_equal(np.array(fa), np.array(fb))
        # Restore recomputes the window's squared norm exactly, so fitness
        # may move by float-drift noise — but no more.
        assert restored.fitness()["fitness"] == pytest.approx(
            session.fitness()["fitness"], abs=1e-12
        )
        # Continue both with the same chunk: still bit-identical factors.
        extra = live_chunks(3, seed=2)[2]
        session.ingest(extra)
        restored.ingest(extra)
        for fa, fb in zip(
            session.factors()["factors"], restored.factors()["factors"]
        ):
            assert np.array_equal(np.array(fa), np.array(fb))
        assert restored._detector.state_dict() == session._detector.state_dict()

    def test_restored_telemetry_includes_the_checkpoint(self, tmp_path):
        session = live_session()
        session.save(tmp_path / "s")
        restored = StreamSession.load(tmp_path / "s")
        assert restored.telemetry.checkpoints_written == 1
        assert restored.telemetry.events_since_checkpoint == 0

    def test_load_rejects_missing_and_damaged_directories(self, tmp_path):
        with pytest.raises(CheckpointError, match="meta.json"):
            StreamSession.load(tmp_path / "missing")
        target = tmp_path / "bad"
        target.mkdir()
        (target / "meta.json").write_text("{broken")
        with pytest.raises(CheckpointError, match="unreadable"):
            StreamSession.load(target)

    def test_load_rejects_live_stream_without_checkpoint(self, tmp_path):
        session = live_session()
        session.save(tmp_path / "s")
        import shutil

        shutil.rmtree(tmp_path / "s" / "state")
        with pytest.raises(CheckpointError, match="no run checkpoint"):
            StreamSession.load(tmp_path / "s")
