"""Sharded executor acceptance: activation, determinism, pool invariance.

The hard guarantees of :mod:`repro.shard`:

* ``shards=1`` / ``staleness=0`` is the exact path — no executor attaches,
  so every golden/bit-exactness suite of the exact path is untouched;
* any other setting attaches the executor, whose results are a
  deterministic function of (config, stream): bit-identical run-to-run and
  across pool kinds (serial / thread), with factors staying finite and
  ``n_updates`` counting every event;
* executor bookkeeping rides in the model's checkpoint aux so sharded runs
  checkpoint/restore exactly (covered further by
  ``tests/stream/test_sharded_checkpoint.py``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.data.generators import generate_synthetic_stream
from repro.exceptions import ConfigurationError
from repro.shard.defaults import resolve_shards, resolve_staleness, set_default_sharding
from repro.shard.executor import ShardedExecutor
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig

MODE_SIZES = (6, 5)
RANK = 3
N_EVENTS = 150


@pytest.fixture(scope="module")
def setup():
    stream = generate_synthetic_stream(
        mode_sizes=MODE_SIZES,
        rank=RANK,
        n_records=300,
        period=10.0,
        records_per_period=30.0,
        seed=3,
    )
    config = WindowConfig(mode_sizes=MODE_SIZES, window_length=3, period=10.0)
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=RANK, n_iterations=5, seed=0)
    return stream, config, initial.decomposition


def run_variant(setup, variant, shards=1, staleness=0, max_events=N_EVENTS):
    stream, config, initial = setup
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(
        variant,
        SNSConfig(
            rank=RANK,
            theta=5,
            eta=1000.0,
            seed=0,
            shards=shards,
            staleness=staleness,
        ),
    )
    model.initialize(processor.window, initial)
    processor.run_batched(model=model, max_events=max_events)
    return processor, model


@pytest.mark.parametrize("variant", sorted(ALGORITHMS))
def test_exact_settings_do_not_attach_executor(setup, variant):
    _, model = run_variant(setup, variant, shards=1, staleness=0)
    assert model._sharded is None


@pytest.mark.parametrize("variant", sorted(ALGORITHMS))
def test_sharded_run_is_finite_and_deterministic(setup, variant):
    processor, model = run_variant(setup, variant, shards=3, staleness=1)
    assert isinstance(model._sharded, ShardedExecutor)
    for factor in model.factors:
        assert np.all(np.isfinite(factor))
    # Every event was counted even though updates happen per batch.
    assert model.n_updates == processor.n_events_emitted == N_EVENTS
    _, twin = run_variant(setup, variant, shards=3, staleness=1)
    for factor, twin_factor in zip(model.factors, twin.factors):
        np.testing.assert_array_equal(factor, twin_factor)


@pytest.mark.parametrize("variant", sorted(ALGORITHMS))
def test_thread_pool_matches_serial_bitwise(setup, variant, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_POOL", "serial")
    _, serial = run_variant(setup, variant, shards=3, staleness=1)
    monkeypatch.setenv("REPRO_SHARD_POOL", "thread")
    _, threaded = run_variant(setup, variant, shards=3, staleness=1)
    for serial_factor, thread_factor in zip(serial.factors, threaded.factors):
        np.testing.assert_array_equal(serial_factor, thread_factor)


def test_staleness_alone_activates_executor(setup):
    _, model = run_variant(setup, "sns_vec", shards=1, staleness=2)
    assert isinstance(model._sharded, ShardedExecutor)
    assert model._sharded.n_shards == 1
    assert model._sharded.staleness == 2


def test_executor_counts_batches_and_exposes_aux(setup):
    _, model = run_variant(setup, "sns_vec", shards=2, staleness=1)
    executor = model._sharded
    assert executor.batch_counter > 0
    aux = model.state_dict()["aux"]
    assert "shard_batch_counter" in aux
    assert int(np.asarray(aux["shard_batch_counter"]).reshape(-1)[0]) == (
        executor.batch_counter
    )
    assert "shard_snapshot_factors" in aux
    assert "shard_snapshot_grams" in aux


def test_sharded_fitness_stays_comparable_to_exact(setup):
    """Relaxed consistency must degrade gracefully, not collapse."""
    _, exact = run_variant(setup, "sns_vec", shards=1, staleness=0)
    _, sharded = run_variant(setup, "sns_vec", shards=4, staleness=2)
    exact_fitness = exact.fitness()
    sharded_fitness = sharded.fitness()
    assert np.isfinite(sharded_fitness)
    assert abs(sharded_fitness - exact_fitness) <= 0.3


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        SNSConfig(rank=RANK, shards=0)
    with pytest.raises(ConfigurationError):
        SNSConfig(rank=RANK, staleness=-1)


def test_invalid_pool_kind_rejected(setup, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_POOL", "fibers")
    with pytest.raises(ConfigurationError):
        run_variant(setup, "sns_vec", shards=2)


def test_default_resolution_contract(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_STALENESS", raising=False)
    set_default_sharding()
    assert resolve_shards() == 1
    assert resolve_staleness() == 0
    monkeypatch.setenv("REPRO_SHARDS", "3")
    monkeypatch.setenv("REPRO_STALENESS", "2")
    assert resolve_shards() == 3
    assert resolve_staleness() == 2
    set_default_sharding(shards=5, staleness=4)
    try:
        assert resolve_shards() == 5  # process default beats environment
        assert resolve_staleness() == 4
        assert resolve_shards(2) == 2  # explicit beats everything
        assert resolve_staleness(0) == 0
        with pytest.raises(ConfigurationError):
            resolve_shards(0)
        with pytest.raises(ConfigurationError):
            resolve_staleness(-1)
    finally:
        set_default_sharding()
    monkeypatch.setenv("REPRO_SHARDS", "zero")
    with pytest.raises(ConfigurationError):
        resolve_shards()
