"""Shard plan properties: shared-nothing partitioning, determinism, balance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.generators import generate_synthetic_stream
from repro.exceptions import ConfigurationError
from repro.shard.plan import plan_batch
from repro.stream.deltas import DeltaBatch
from repro.stream.events import EventKind, StreamRecord
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig

MODE_SIZES = (6, 5)


def stream_batches(seed=3, n_records=200):
    stream = generate_synthetic_stream(
        mode_sizes=MODE_SIZES,
        rank=3,
        n_records=n_records,
        period=10.0,
        records_per_period=30.0,
        seed=seed,
    )
    config = WindowConfig(mode_sizes=MODE_SIZES, window_length=3, period=10.0)
    processor = ContinuousStreamProcessor(stream, config)
    batches = list(processor.iter_batches())
    assert batches, "synthetic stream produced no batches"
    return batches


def hand_batch(index_rows, window_length=2):
    """A trusted-shape batch with one arrival event per categorical index row."""
    raw = []
    coordinates = []
    values = []
    for sequence, indices in enumerate(index_rows):
        record = StreamRecord(indices=tuple(indices), value=1.0, time=float(sequence))
        raw.append((float(sequence), sequence, EventKind.ARRIVAL, record, 0))
        coordinates.append((*indices, window_length - 1))
        values.append(1.0)
    return DeltaBatch(raw, coordinates, values, window_length=window_length)


def shard_keys(batch, plan):
    """Categorical (mode, index) keys touched by each shard's events."""
    groups = list(batch.entry_groups())
    keys = [dict() for _ in range(plan.n_shards)]
    for event, shard in enumerate(plan.assignments):
        record, _step, _entries = groups[event]
        for mode, index in enumerate(record.indices):
            keys[shard][(mode, int(index))] = None
    return keys


@pytest.mark.parametrize("n_shards", [1, 2, 4, 7])
def test_shards_are_key_disjoint(n_shards):
    for batch in stream_batches():
        plan = plan_batch(batch, n_shards)
        assert plan.n_events == batch.n_events
        assert len(plan.assignments) == batch.n_events
        assert all(0 <= shard < n_shards for shard in plan.assignments)
        keys = shard_keys(batch, plan)
        for a in range(n_shards):
            for b in range(a + 1, n_shards):
                overlap = [key for key in keys[a] if key in keys[b]]
                assert not overlap, (
                    f"shards {a} and {b} share categorical rows {overlap}"
                )


def test_plan_is_deterministic():
    for batch in stream_batches():
        first = plan_batch(batch, 4)
        second = plan_batch(batch, 4)
        assert first == second


def test_single_shard_takes_everything():
    for batch in stream_batches(n_records=60):
        plan = plan_batch(batch, 1)
        assert plan.assignments == (0,) * batch.n_events
        assert plan.shard_sizes == [batch.n_events]


def test_more_shards_than_events():
    batch = hand_batch([(0, 0), (1, 1)])
    plan = plan_batch(batch, 8)
    assert plan.n_events == 2
    assert all(0 <= shard < 8 for shard in plan.assignments)
    # Two disjoint events can use two distinct shards.
    assert len(dict.fromkeys(plan.assignments)) == 2


def test_disjoint_events_balance_within_one():
    # Five singleton components (pairwise-distinct keys in both modes)
    # greedily packed onto five shards must land one per shard.
    batch = hand_batch([(i, (i + 1) % 5) for i in range(5)])
    plan = plan_batch(batch, 5)
    sizes = plan.shard_sizes
    assert max(sizes) - min(sizes) <= 1


def test_chained_events_form_one_component():
    # Events chained through shared keys: (0,0)-(0,1) share mode-0 index 0;
    # (0,1)-(1,1) share mode-1 index 1 -> all three in one shard.
    batch = hand_batch([(0, 0), (0, 1), (1, 1), (3, 4)])
    plan = plan_batch(batch, 4)
    assert plan.n_components == 2
    assert plan.assignments[0] == plan.assignments[1] == plan.assignments[2]
    assert plan.assignments[3] != plan.assignments[0]


def test_events_of_and_sizes_are_consistent():
    batch = hand_batch([(0, 0), (1, 1), (2, 2), (0, 3)])
    plan = plan_batch(batch, 2)
    listed = [event for shard in range(2) for event in plan.events_of(shard)]
    assert sorted(listed) == list(range(batch.n_events))
    assert [len(plan.events_of(shard)) for shard in range(2)] == plan.shard_sizes


def test_invalid_shard_count_rejected():
    batch = hand_batch([(0, 0)])
    with pytest.raises(ConfigurationError):
        plan_batch(batch, 0)


def test_plan_ignores_time_mode_keys():
    # Two events at the same time unit but disjoint categorical keys must be
    # separable: the time mode is reconciled by the merge, not the plan.
    batch = hand_batch([(0, 0), (1, 1)])
    groups = list(batch.entry_groups())
    units = {coordinate[-1] for _record, _step, entries in groups for coordinate, _ in entries}
    assert len(units) == 1  # both events write the same time unit
    plan = plan_batch(batch, 2)
    assert plan.assignments[0] != plan.assignments[1]
