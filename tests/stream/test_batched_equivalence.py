"""Property-based equivalence suite for the batched event engine.

The batched engine (``ContinuousStreamProcessor.iter_batches`` /
``run_batched`` / ``ContinuousCPD.update_batch``) promises *exact*
equivalence with the per-event path:

* pure replay leaves the tensor window **bit-identical** to applying every
  delta one at a time (the grouped scatter-add reproduces the same float
  operations in the same order, including drop-tolerance snapping), and
* every SliceNStitch variant driven through ``update_batch`` produces the
  same factor matrices as the per-event ``events()`` + ``update`` loop (the
  suite asserts the paper-level ``1e-8`` bound; in practice the results are
  bit-identical because the batched overrides only share per-event setup).

These properties are checked on random seeded streams with float values and
irregular float timestamps, across batch windows from "simultaneous events
only" to several periods.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.stream.events import StreamRecord
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig
from repro.tensor.sparse import SparseTensor

import pytest


@st.composite
def stream_and_config(draw):
    """A small random stream plus a compatible window configuration."""
    n_modes = draw(st.integers(min_value=1, max_value=2))
    mode_sizes = tuple(
        draw(st.integers(min_value=2, max_value=4)) for _ in range(n_modes)
    )
    window_length = draw(st.integers(min_value=1, max_value=4))
    period = float(draw(st.integers(min_value=1, max_value=4)))
    n_records = draw(st.integers(min_value=2, max_value=18))
    records = []
    time = 0.0
    for _ in range(n_records):
        # Mix exact collisions (increment 0) with irregular float gaps.
        time += draw(
            st.one_of(
                st.just(0.0),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            )
        )
        indices = tuple(
            draw(st.integers(min_value=0, max_value=size - 1)) for size in mode_sizes
        )
        value = draw(
            st.one_of(
                st.integers(min_value=-5, max_value=5).map(float),
                st.floats(
                    min_value=-10.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            )
        )
        records.append(StreamRecord(indices=indices, value=value, time=time))
    stream = MultiAspectStream(records, mode_sizes=mode_sizes)
    config = WindowConfig(
        mode_sizes=mode_sizes, window_length=window_length, period=period
    )
    start_time = float(draw(st.integers(min_value=0, max_value=int(time) + 2)))
    batch_window = draw(
        st.one_of(
            st.just(0.0),
            st.just(None),  # default: one period
            st.floats(min_value=0.0, max_value=3.0 * period, allow_nan=False),
        )
    )
    return stream, config, start_time, batch_window


def event_key(event):
    """All event fields (WindowEvent equality only compares time/sequence)."""
    return (event.time, event.sequence, event.kind, event.record, event.step)


def window_entries(processor):
    return dict(processor.window.tensor.items())


@given(stream_and_config())
@settings(max_examples=60, deadline=None)
def test_pure_replay_is_bit_identical(case):
    stream, config, start_time, batch_window = case
    sequential = ContinuousStreamProcessor(stream, config, start_time=start_time)
    sequential.run()
    batched = ContinuousStreamProcessor(stream, config, start_time=start_time)
    n_batched = batched.run_batched(batch_window=batch_window)
    assert n_batched == sequential.n_events_emitted
    assert batched.n_events_emitted == sequential.n_events_emitted
    assert window_entries(batched) == window_entries(sequential)
    assert batched.window.n_deltas_applied == sequential.window.n_deltas_applied
    assert not batched.has_pending_events


@given(stream_and_config())
@settings(max_examples=60, deadline=None)
def test_batched_event_stream_matches_per_event_stream(case):
    stream, config, start_time, batch_window = case
    sequential = ContinuousStreamProcessor(stream, config, start_time=start_time)
    expected = [event_key(event) for event, _ in sequential.events()]
    batched = ContinuousStreamProcessor(stream, config, start_time=start_time)
    observed = []
    for batch in batched.iter_batches(batch_window=batch_window):
        assert batch.n_events > 0
        assert batch.start_time <= batch.end_time
        observed.extend(event_key(event) for event in batch.events)
        batched.window.apply_batch(batch)
    assert observed == expected


@given(stream_and_config())
@settings(max_examples=40, deadline=None)
def test_batch_deltas_match_per_event_deltas(case):
    stream, config, start_time, batch_window = case
    sequential = ContinuousStreamProcessor(stream, config, start_time=start_time)
    expected = [delta.entries for _, delta in sequential.events()]
    batched = ContinuousStreamProcessor(stream, config, start_time=start_time)
    observed = []
    entry_total = 0
    for batch in batched.iter_batches(batch_window=batch_window):
        observed.extend(delta.entries for delta in batch.deltas)
        # The COO view carries exactly the per-delta entries, in event order.
        flattened = [
            ((*index_row, int(unit)), value)
            for index_row, unit, value in zip(
                batch.indices.tolist(), batch.units.tolist(), batch.values.tolist()
            )
        ]
        assert flattened == [
            (coordinate, value)
            for delta in batch.deltas
            for coordinate, value in delta.entries
        ]
        entry_total += batch.nnz
        batched.window.apply_batch(batch)
    assert observed == expected
    assert entry_total == sum(len(entries) for entries in expected)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@given(case=stream_and_config())
@settings(max_examples=15, deadline=None)
def test_models_reach_identical_factors(name, case):
    stream, config, start_time, batch_window = case
    rank = 2
    rng = np.random.default_rng(7)
    factors = [
        rng.standard_normal((size, rank)) * 0.1 for size in config.shape
    ]
    sns_config = SNSConfig(rank=rank, theta=3, eta=100.0, seed=11)

    sequential = ContinuousStreamProcessor(stream, config, start_time=start_time)
    model_sequential = create_algorithm(name, sns_config)
    model_sequential.initialize(sequential.window, factors)
    for _, delta in sequential.events():
        model_sequential.update(delta)

    batched = ContinuousStreamProcessor(stream, config, start_time=start_time)
    model_batched = create_algorithm(name, sns_config)
    model_batched.initialize(batched.window, factors)
    batched.run_batched(model=model_batched, batch_window=batch_window)

    assert window_entries(batched) == window_entries(sequential)
    assert model_batched.n_updates == model_sequential.n_updates
    for factor_sequential, factor_batched in zip(
        model_sequential.factors, model_batched.factors
    ):
        assert np.allclose(
            factor_batched, factor_sequential, atol=1e-8, rtol=0.0, equal_nan=True
        )


@pytest.mark.parametrize("sampling", ["legacy", "vectorized"])
@pytest.mark.parametrize("name", ["sns_rnd", "sns_rnd_plus"])
@given(case=stream_and_config())
@settings(max_examples=10, deadline=None)
def test_randomized_variants_equivalent_under_both_samplers(name, sampling, case):
    """The randomised ``update_batch`` overrides must be exact for both
    sampler implementations: sequential and batched runs consume identical
    draw streams and land on identical factors."""
    stream, config, start_time, batch_window = case
    rank = 2
    rng = np.random.default_rng(7)
    factors = [
        rng.standard_normal((size, rank)) * 0.1 for size in config.shape
    ]
    sns_config = SNSConfig(rank=rank, theta=3, eta=100.0, seed=11, sampling=sampling)

    sequential = ContinuousStreamProcessor(stream, config, start_time=start_time)
    model_sequential = create_algorithm(name, sns_config)
    model_sequential.initialize(sequential.window, factors)
    for _, delta in sequential.events():
        model_sequential.update(delta)

    batched = ContinuousStreamProcessor(stream, config, start_time=start_time)
    model_batched = create_algorithm(name, sns_config)
    model_batched.initialize(batched.window, factors)
    batched.run_batched(model=model_batched, batch_window=batch_window)

    assert model_batched.n_updates == model_sequential.n_updates
    for factor_sequential, factor_batched in zip(
        model_sequential.factors, model_batched.factors
    ):
        assert np.allclose(
            factor_batched, factor_sequential, atol=1e-8, rtol=0.0, equal_nan=True
        )


@given(stream_and_config(), st.integers(min_value=1, max_value=10))
@settings(max_examples=40, deadline=None)
def test_run_batched_respects_max_events(case, max_events):
    stream, config, start_time, batch_window = case
    sequential = ContinuousStreamProcessor(stream, config, start_time=start_time)
    n_sequential = sequential.run(max_events=max_events)
    batched = ContinuousStreamProcessor(stream, config, start_time=start_time)
    n_batched = batched.run_batched(max_events=max_events, batch_window=batch_window)
    assert n_batched == n_sequential
    assert window_entries(batched) == window_entries(sequential)


@given(stream_and_config(), st.floats(min_value=0.0, max_value=30.0, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_run_batched_respects_end_time(case, horizon):
    stream, config, start_time, batch_window = case
    end_time = start_time + horizon
    sequential = ContinuousStreamProcessor(stream, config, start_time=start_time)
    n_sequential = sequential.run(end_time=end_time)
    batched = ContinuousStreamProcessor(stream, config, start_time=start_time)
    n_batched = batched.run_batched(end_time=end_time, batch_window=batch_window)
    assert n_batched == n_sequential
    assert window_entries(batched) == window_entries(sequential)
    # Both processors must also agree on what is still pending.
    assert batched.n_pending_records == sequential.n_pending_records
    assert batched.has_pending_events == sequential.has_pending_events


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),
            st.integers(min_value=0, max_value=2),
            st.one_of(
                st.floats(
                    min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False
                ),
                # Adversarial near-drop-tolerance magnitudes.
                st.floats(
                    min_value=-1e-11, max_value=1e-11, allow_nan=False
                ),
            ),
        ),
        min_size=0,
        max_size=40,
    )
)
@settings(max_examples=80, deadline=None)
def test_add_batch_matches_sequential_adds(entries):
    shape = (3, 3)
    sequential = SparseTensor(shape)
    for i, j, value in entries:
        sequential.add((i, j), value)
    batched = SparseTensor(shape)
    batched.add_batch([(i, j) for i, j, _ in entries], [v for _, _, v in entries])
    assert dict(batched.items()) == dict(sequential.items())
    # The inverted indexes must agree too (degree drives the SNS update rules).
    for mode in range(2):
        for index in range(3):
            assert batched.degree(mode, index) == sequential.degree(mode, index)


def test_add_batch_validates_input():
    from repro.exceptions import IndexOutOfBoundsError, ShapeError

    tensor = SparseTensor((2, 2))
    with pytest.raises(ShapeError):
        tensor.add_batch([(0, 0, 0)], [1.0])
    with pytest.raises(ShapeError):
        tensor.add_batch([(0, 0)], [1.0, 2.0])
    with pytest.raises(IndexOutOfBoundsError):
        tensor.add_batch([(0, 5)], [1.0])
    with pytest.raises(IndexOutOfBoundsError):
        tensor.add_batch(np.array([[0, -1]]), np.array([1.0]))
    tensor.add_batch(np.array([[0, 1]]), np.array([2.5]))
    assert tensor.get((0, 1)) == 2.5


def test_apply_batch_validates_untrusted_batches():
    from repro.exceptions import IndexOutOfBoundsError
    from repro.stream.deltas import DeltaBatch
    from repro.stream.events import EventKind
    from repro.stream.window import TensorWindow

    window = TensorWindow(WindowConfig(mode_sizes=(2,), window_length=2, period=1.0))
    record = StreamRecord(indices=(0,), value=1.0, time=0.0)
    raw = [(0.0, 0, EventKind.ARRIVAL, record, 0)]
    # Engine batches are trusted; hand-built ones must be bounds-checked.
    bad = DeltaBatch(raw, [(0, 5)], [1.0], window_length=2)
    assert not bad.trusted
    with pytest.raises(IndexOutOfBoundsError):
        window.apply_batch(bad)
    good = DeltaBatch(raw, [(0, 1)], [1.0], window_length=2)
    window.apply_batch(good)
    assert window.tensor.get((0, 1)) == 1.0


def test_iter_batches_rejects_negative_batch_window():
    from repro.exceptions import ConfigurationError

    records = [StreamRecord(indices=(0,), value=1.0, time=float(t)) for t in range(4)]
    stream = MultiAspectStream(records, mode_sizes=(2,))
    config = WindowConfig(mode_sizes=(2,), window_length=2, period=1.0)
    processor = ContinuousStreamProcessor(stream, config)
    with pytest.raises(ConfigurationError):
        next(processor.iter_batches(batch_window=-1.0))
