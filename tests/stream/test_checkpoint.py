"""Unit tests for the checkpoint/restore subsystem (repro.stream.checkpoint).

The exact-equivalence guarantee across all variants/engines/samplers lives in
``test_checkpoint_equivalence.py``; this module covers the format itself and
the edge cases: empty-window snapshots, snapshots taken between simultaneous
events (mid-tie), manifest validation, the model state protocol, and the
unified event counter.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import create_algorithm
from repro.exceptions import ConfigurationError
from repro.stream.checkpoint import (
    ARRAYS_FILENAME,
    FORMAT_VERSION,
    MANIFEST_FILENAME,
    SNAPSHOT_FORMAT_VERSION,
    is_checkpoint,
    is_experiment_snapshot,
    load_checkpoint,
    load_experiment_snapshot,
    restore_run,
    save_checkpoint,
    save_experiment_snapshot,
)
from repro.stream.events import EventKind, StreamRecord
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig


def drain_pairs(processor, max_events=None):
    """Collect ``(time, sequence, kind, step, indices)`` of emitted events."""
    return [
        (event.time, event.sequence, event.kind, event.step, event.record.indices)
        for event, _ in processor.events(max_events=max_events)
    ]


class TestRoundTrip:
    def test_processor_only_round_trip(self, small_processor, tmp_path):
        small_processor.run(max_events=50)
        small_processor.save_checkpoint(tmp_path / "ckpt")
        assert is_checkpoint(tmp_path / "ckpt")
        restored, model, extra = restore_run(tmp_path / "ckpt")
        assert model is None
        assert extra is None
        assert restored.start_time == small_processor.start_time
        assert restored.n_events_emitted == small_processor.n_events_emitted
        assert restored.n_pending_records == small_processor.n_pending_records
        assert dict(restored.window.tensor.items()) == dict(
            small_processor.window.tensor.items()
        )
        # The remaining event sequence is bit-identical, ties included.
        assert drain_pairs(restored) == drain_pairs(small_processor)

    def test_from_checkpoint_classmethod(self, small_processor, tmp_path):
        small_processor.run(max_events=25)
        small_processor.save_checkpoint(tmp_path / "ckpt")
        restored = ContinuousStreamProcessor.from_checkpoint(tmp_path / "ckpt")
        assert drain_pairs(restored) == drain_pairs(small_processor)

    def test_extra_payload_round_trips(self, small_processor, tmp_path):
        payload = {"n_events": 7, "series": [1.0, 0.5]}
        small_processor.save_checkpoint(tmp_path / "ckpt", extra=payload)
        _, _, extra = restore_run(tmp_path / "ckpt")
        assert extra == payload

    def test_empty_window_snapshot(self, tmp_path):
        # One record, start_time far enough out that it expired before
        # streaming begins and nothing is pending inside the window.
        stream = MultiAspectStream(
            [StreamRecord(indices=(0, 0), value=1.0, time=0.0)], mode_sizes=(2, 2)
        )
        config = WindowConfig(mode_sizes=(2, 2), window_length=2, period=1.0)
        processor = ContinuousStreamProcessor(stream, config, start_time=100.0)
        assert processor.window.nnz == 0
        assert not processor.has_pending_events
        processor.save_checkpoint(tmp_path / "ckpt")
        restored, _, _ = restore_run(tmp_path / "ckpt")
        assert restored.window.nnz == 0
        assert restored.window.tensor.squared_norm() == 0.0
        assert not restored.has_pending_events
        assert drain_pairs(restored) == []

    def test_mid_event_tie_snapshot(self, tmp_path):
        # With period 10 and records at t=0 and t=10, the t=0 record's first
        # shift fires at exactly t=10 — simultaneous with the t=10 arrival.
        # Checkpoint *before* the tie fires, then check the restored run
        # resolves it identically (scheduled events win, in sequence order).
        records = [
            StreamRecord(indices=(0,), value=1.0, time=0.0),
            StreamRecord(indices=(1,), value=2.0, time=0.0),
            StreamRecord(indices=(0,), value=3.0, time=10.0),
            StreamRecord(indices=(1,), value=4.0, time=20.0),
        ]
        stream = MultiAspectStream(records, mode_sizes=(2,))
        config = WindowConfig(mode_sizes=(2,), window_length=3, period=10.0)
        reference = ContinuousStreamProcessor(stream, config, start_time=5.0)
        paused = ContinuousStreamProcessor(stream, config, start_time=5.0)
        reference_pairs = drain_pairs(reference)
        paused.run(end_time=5.0)  # nothing fired yet; ties are all pending
        paused.save_checkpoint(tmp_path / "ckpt")
        restored, _, _ = restore_run(tmp_path / "ckpt")
        assert drain_pairs(restored) == reference_pairs
        assert dict(restored.window.tensor.items()) == dict(
            reference.window.tensor.items()
        )

    def test_mid_tie_snapshot_between_simultaneous_events(self, tmp_path):
        # Stop *between* two events that fire at the same instant (a shift
        # and an arrival at t=10): max_events cuts after the shift, so the
        # checkpointed scheduler still holds its half of the tie.
        records = [
            StreamRecord(indices=(0,), value=1.0, time=0.0),
            StreamRecord(indices=(1,), value=2.0, time=10.0),
            StreamRecord(indices=(0,), value=3.0, time=25.0),
        ]
        stream = MultiAspectStream(records, mode_sizes=(2,))
        config = WindowConfig(mode_sizes=(2,), window_length=2, period=10.0)
        reference = ContinuousStreamProcessor(stream, config, start_time=0.0)
        paused = ContinuousStreamProcessor(stream, config, start_time=0.0)
        reference_pairs = drain_pairs(reference)
        first = drain_pairs(paused, max_events=1)
        # The tie at t=10 must have been cut in half: the scheduled shift
        # fired, the simultaneous arrival is still pending.
        assert first[0][0] == 10.0 and first[0][2] is EventKind.SHIFT
        paused.save_checkpoint(tmp_path / "ckpt")
        restored, _, _ = restore_run(tmp_path / "ckpt")
        assert first + drain_pairs(restored) == reference_pairs

    def test_resave_over_existing_checkpoint_swaps_atomically(
        self, small_processor, tmp_path
    ):
        target = tmp_path / "ckpt"
        small_processor.run(max_events=10)
        small_processor.save_checkpoint(target)
        first = (target / MANIFEST_FILENAME).read_text()
        small_processor.run(max_events=10)
        small_processor.save_checkpoint(target)
        second = (target / MANIFEST_FILENAME).read_text()
        assert first != second
        # No temp/retired siblings are left behind by the directory swap.
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "ckpt"]
        assert leftovers == []
        restored, _, _ = restore_run(target)
        assert restored.n_events_emitted == 20

    def test_checkpoint_is_self_contained(self, small_processor, tmp_path):
        # Restoring must not need the original stream object: the pending
        # records travel inside the checkpoint.
        small_processor.run(max_events=40)
        small_processor.save_checkpoint(tmp_path / "ckpt")
        expected = drain_pairs(small_processor)
        del small_processor
        restored, _, _ = restore_run(tmp_path / "ckpt")
        assert drain_pairs(restored) == expected


class TestManifestValidation:
    def test_missing_directory_is_not_a_checkpoint(self, tmp_path):
        assert not is_checkpoint(tmp_path / "nope")
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "nope")

    def test_version_mismatch_raises(self, small_processor, tmp_path):
        path = small_processor.save_checkpoint(tmp_path / "ckpt")
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="version"):
            load_checkpoint(path)

    def test_foreign_format_raises(self, small_processor, tmp_path):
        path = small_processor.save_checkpoint(tmp_path / "ckpt")
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something-else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="format|manifest"):
            load_checkpoint(path)

    def test_corrupt_manifest_raises(self, small_processor, tmp_path):
        path = small_processor.save_checkpoint(tmp_path / "ckpt")
        (path / MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)

    def test_missing_arrays_file_raises(self, small_processor, tmp_path):
        path = small_processor.save_checkpoint(tmp_path / "ckpt")
        (path / ARRAYS_FILENAME).unlink()
        assert not is_checkpoint(path)
        with pytest.raises(ConfigurationError):
            load_checkpoint(path)


class TestModelStateProtocol:
    @pytest.fixture
    def initialized_model(self, small_processor, small_initial_factors):
        model = create_algorithm("sns_rnd_plus", SNSConfig(rank=4, theta=5, seed=0))
        model.initialize(small_processor.window, small_initial_factors)
        return small_processor, model

    def test_window_identity_is_enforced(self, initialized_model, tmp_path):
        processor, model = initialized_model
        detached = processor.window.copy()
        model._window = detached  # simulate a consumer wiring the wrong window
        with pytest.raises(ConfigurationError, match="window"):
            save_checkpoint(tmp_path / "ckpt", processor, model=model)

    def test_state_dict_round_trip_through_disk(self, initialized_model, tmp_path):
        processor, model = initialized_model
        for _, delta in processor.events(max_events=30):
            model.update(delta)
        processor.save_checkpoint(tmp_path / "ckpt", model=model)
        restored_processor, restored_model, _ = restore_run(tmp_path / "ckpt")
        assert restored_model is not None
        assert restored_model.name == model.name
        assert restored_model.n_updates == model.n_updates
        for mine, restored in zip(model.factors, restored_model.factors):
            np.testing.assert_array_equal(mine, restored)
        for mine, restored in zip(model.grams, restored_model.grams):
            np.testing.assert_array_equal(mine, restored)
        for mine, restored in zip(
            model.prev_grams, restored_model.prev_grams
        ):
            np.testing.assert_array_equal(mine, restored)
        # The RNG stream continues on the exact same draws.
        assert (
            restored_model._rng.bit_generator.state
            == model._rng.bit_generator.state
        )
        assert list(restored_model._rng.integers(0, 1 << 30, 8)) == list(
            model._rng.integers(0, 1 << 30, 8)
        )

    def test_load_state_rejects_wrong_algorithm(self, initialized_model):
        processor, model = initialized_model
        state = model.state_dict()
        other = create_algorithm("sns_vec", SNSConfig(rank=4, theta=5, seed=0))
        with pytest.raises(ConfigurationError, match="sns_rnd_plus"):
            other.load_state(processor.window, state)

    def test_load_state_rejects_config_mismatch(self, initialized_model):
        processor, model = initialized_model
        state = model.state_dict()
        other = create_algorithm("sns_rnd_plus", SNSConfig(rank=4, theta=9, seed=0))
        with pytest.raises(ConfigurationError, match="theta"):
            other.load_state(processor.window, state)

    def test_sns_mat_weights_survive(self, small_processor, small_initial_factors, tmp_path):
        model = create_algorithm("sns_mat", SNSConfig(rank=4, seed=0))
        model.initialize(small_processor.window, small_initial_factors)
        for _, delta in small_processor.events(max_events=10):
            model.update(delta)
        small_processor.save_checkpoint(tmp_path / "ckpt", model=model)
        _, restored, _ = restore_run(tmp_path / "ckpt")
        np.testing.assert_array_equal(restored.weights, model.weights)
        # λ folds into the decomposition; fitness must match exactly.
        assert restored.fitness() == model.fitness()


class TestUnifiedEventCounter:
    def test_suppressed_expiries_are_not_counted(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=2, period=10.0)
        with_expiry = ContinuousStreamProcessor(tiny_stream, config)
        emitted_all = sum(1 for _ in with_expiry.events())
        assert with_expiry.n_events_emitted == emitted_all

        suppressed = ContinuousStreamProcessor(tiny_stream, config)
        emitted_visible = sum(
            1 for _ in suppressed.events(include_expiry=False)
        )
        # Regression: the lifetime counter used to keep counting suppressed
        # expiries, diverging from the emitted/max_events bookkeeping.
        assert suppressed.n_events_emitted == emitted_visible
        assert emitted_visible < emitted_all
        # The window itself still received every expiry.
        assert dict(suppressed.window.tensor.items()) == dict(
            with_expiry.window.tensor.items()
        )

    def test_counter_is_persisted(self, small_processor, tmp_path):
        small_processor.run(max_events=33)
        assert small_processor.n_events_emitted == 33
        small_processor.save_checkpoint(tmp_path / "ckpt")
        restored, _, _ = restore_run(tmp_path / "ckpt")
        assert restored.n_events_emitted == 33


class TestExperimentSnapshots:
    """Prepared-experiment snapshots: exact roundtrip + format validation."""

    @pytest.fixture
    def snapshot_parts(self, small_stream, small_window_config, small_processor):
        initial = decompose(
            small_processor.window.tensor, rank=4, n_iterations=5, seed=3
        ).decomposition
        return small_stream, small_window_config, initial

    def test_roundtrip_is_exact(self, snapshot_parts, tmp_path):
        stream, config, initial = snapshot_parts
        path = save_experiment_snapshot(
            tmp_path / "snap", stream, config, initial, extra={"note": "x"}
        )
        assert is_experiment_snapshot(path)
        snapshot = load_experiment_snapshot(path)
        assert snapshot.window_config == config
        assert snapshot.stream.records == stream.records
        assert snapshot.stream.mode_sizes == stream.mode_sizes
        assert snapshot.stream.mode_names == stream.mode_names
        for rebuilt, original in zip(
            snapshot.initial_factors.factors, initial.factors
        ):
            assert (rebuilt == np.asarray(original)).all()
        assert (snapshot.initial_factors.weights == initial.weights).all()
        assert snapshot.extra == {"note": "x"}

    def test_plain_factor_list_is_accepted(self, snapshot_parts, tmp_path):
        stream, config, initial = snapshot_parts
        path = save_experiment_snapshot(
            tmp_path / "snap", stream, config, initial.factors
        )
        snapshot = load_experiment_snapshot(path)
        for rebuilt, original in zip(
            snapshot.initial_factors.factors, initial.factors
        ):
            assert (rebuilt == np.asarray(original)).all()
        assert (snapshot.initial_factors.weights == 1.0).all()

    def test_mismatched_stream_and_config_rejected(self, snapshot_parts, tmp_path):
        stream, config, initial = snapshot_parts
        other = WindowConfig(mode_sizes=(9, 9), window_length=4, period=10.0)
        with pytest.raises(ConfigurationError, match="mode sizes"):
            save_experiment_snapshot(tmp_path / "snap", stream, other, initial)

    def test_snapshot_and_run_checkpoint_formats_are_distinct(
        self, snapshot_parts, small_processor, tmp_path
    ):
        stream, config, initial = snapshot_parts
        snapshot_path = save_experiment_snapshot(
            tmp_path / "snap", stream, config, initial
        )
        checkpoint_path = small_processor.save_checkpoint(tmp_path / "ckpt")
        assert not is_experiment_snapshot(checkpoint_path)
        with pytest.raises(ConfigurationError, match="manifest|format"):
            load_experiment_snapshot(checkpoint_path)
        with pytest.raises(ConfigurationError, match="manifest|format"):
            load_checkpoint(snapshot_path)

    def test_snapshot_version_mismatch_raises(self, snapshot_parts, tmp_path):
        stream, config, initial = snapshot_parts
        path = save_experiment_snapshot(tmp_path / "snap", stream, config, initial)
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="version"):
            load_experiment_snapshot(path)

    def test_missing_directory_raises(self, tmp_path):
        assert not is_experiment_snapshot(tmp_path / "nope")
        with pytest.raises(ConfigurationError):
            load_experiment_snapshot(tmp_path / "nope")
