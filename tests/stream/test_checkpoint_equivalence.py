"""Resume-equivalence suite: checkpoint → restore → continue vs uninterrupted.

For every SliceNStitch variant × engine (per-event / batched) × sampler
(vectorized / legacy), an interrupted run — save at N/2 events, restore into
fresh objects, replay the remaining events — must match an uninterrupted
N-event run:

* the tensor window **bit-identically** (exact dict equality of entries),
* the factor matrices within ``1e-12`` (the documented bound; in practice
  the restored runs reproduce the reference exactly, because the restore
  path rebuilds the sparse backend in storage order — which fixes slice
  enumeration — and the model's RNG stream bit-for-bit),
* the lifetime counters (`n_events_emitted`, `n_updates`) exactly.

This is the acceptance gate of the checkpoint subsystem; CI runs it as the
resume-equivalence smoke step.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.data.generators import generate_synthetic_stream
from repro.stream.checkpoint import restore_run
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig

#: Documented factor-deviation bound for a resumed run.
FACTOR_TOLERANCE = 1e-12

#: Total replayed events; the checkpoint is taken at the halfway point.
N_EVENTS = 200

MODE_SIZES = (6, 5)
RANK = 3


@pytest.fixture(scope="module")
def equivalence_setup():
    stream = generate_synthetic_stream(
        mode_sizes=MODE_SIZES,
        rank=RANK,
        n_records=400,
        period=10.0,
        records_per_period=30.0,
        seed=3,
    )
    config = WindowConfig(mode_sizes=MODE_SIZES, window_length=3, period=10.0)
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=RANK, n_iterations=5, seed=0)
    return stream, config, initial.decomposition


def build_run(equivalence_setup, variant: str, sampling: str):
    stream, config, initial = equivalence_setup
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(
        variant,
        SNSConfig(rank=RANK, theta=5, eta=1000.0, seed=0, sampling=sampling),
    )
    model.initialize(processor.window, initial)
    return processor, model


def advance(processor, model, n_events: int, batched: bool) -> None:
    if batched:
        processor.run_batched(model=model, max_events=n_events)
    else:
        for _, delta in processor.events(max_events=n_events):
            model.update(delta)


@pytest.mark.parametrize("batched", [False, True], ids=["per_event", "batched"])
@pytest.mark.parametrize("sampling", ["vectorized", "legacy"])
@pytest.mark.parametrize("variant", sorted(ALGORITHMS))
def test_resume_matches_uninterrupted_run(
    equivalence_setup, tmp_path, variant, sampling, batched
):
    # Reference: one uninterrupted N-event run.
    reference_processor, reference_model = build_run(
        equivalence_setup, variant, sampling
    )
    advance(reference_processor, reference_model, N_EVENTS, batched)

    # Interrupted twin: N/2 events, checkpoint, restore, remaining N/2.
    half = N_EVENTS // 2
    paused_processor, paused_model = build_run(equivalence_setup, variant, sampling)
    advance(paused_processor, paused_model, half, batched)
    paused_processor.save_checkpoint(tmp_path / "ckpt", model=paused_model)
    restored_processor, restored_model, _ = restore_run(tmp_path / "ckpt")
    assert restored_model is not None
    advance(restored_processor, restored_model, N_EVENTS - half, batched)

    # Window: bit-identical, entry for entry.
    assert dict(restored_processor.window.tensor.items()) == dict(
        reference_processor.window.tensor.items()
    )
    assert (
        restored_processor.n_events_emitted
        == reference_processor.n_events_emitted
        == N_EVENTS
    )
    # Factors: within the documented bound (observed: exactly equal).
    assert restored_model.n_updates == reference_model.n_updates
    scale = max(
        1.0,
        max(float(np.max(np.abs(f))) for f in reference_model.factors),
    )
    for mode, (restored, reference) in enumerate(
        zip(restored_model.factors, reference_model.factors)
    ):
        deviation = float(np.max(np.abs(restored - reference)))
        assert deviation <= FACTOR_TOLERANCE * scale, (
            f"factor {mode} deviates by {deviation:.3e} "
            f"(bound {FACTOR_TOLERANCE * scale:.3e})"
        )
    # Fitness — a global reduction over window and factors — must agree too.
    assert restored_model.fitness() == pytest.approx(
        reference_model.fitness(), rel=1e-12, abs=1e-12
    )


@pytest.mark.parametrize("sampling", ["vectorized", "legacy"])
def test_double_interruption_stays_exact(equivalence_setup, tmp_path, sampling):
    """Two checkpoint/restore cycles compose without losing exactness."""
    reference_processor, reference_model = build_run(
        equivalence_setup, "sns_rnd_plus", sampling
    )
    advance(reference_processor, reference_model, N_EVENTS, batched=False)

    processor, model = build_run(equivalence_setup, "sns_rnd_plus", sampling)
    consumed = 0
    for chunk in (N_EVENTS // 3, N_EVENTS // 3):
        advance(processor, model, chunk, batched=False)
        consumed += chunk
        processor.save_checkpoint(tmp_path / "ckpt", model=model)
        processor, model, _ = restore_run(tmp_path / "ckpt")
    advance(processor, model, N_EVENTS - consumed, batched=False)

    assert dict(processor.window.tensor.items()) == dict(
        reference_processor.window.tensor.items()
    )
    for restored, reference in zip(model.factors, reference_model.factors):
        np.testing.assert_allclose(
            restored, reference, rtol=0.0, atol=FACTOR_TOLERANCE * 100
        )


@pytest.mark.parametrize("batched", [False, True], ids=["per_event", "batched"])
def test_resume_crossing_engines_keeps_window_exact(
    equivalence_setup, tmp_path, batched
):
    """A checkpoint saved by one engine restores into the other exactly.

    Pure window replay is engine-agnostic (grouping does not change the
    float operations), so saving under one engine and continuing under the
    other must still reproduce the reference window bit for bit.
    """
    stream, config, _ = equivalence_setup
    reference = ContinuousStreamProcessor(stream, config)
    reference.run(max_events=N_EVENTS)

    paused = ContinuousStreamProcessor(stream, config)
    if batched:
        paused.run_batched(max_events=N_EVENTS // 2)
    else:
        paused.run(max_events=N_EVENTS // 2)
    paused.save_checkpoint(tmp_path / "ckpt")
    restored, _, _ = restore_run(tmp_path / "ckpt")
    if batched:
        restored.run(max_events=N_EVENTS - N_EVENTS // 2)  # cross over
    else:
        restored.run_batched(max_events=N_EVENTS - N_EVENTS // 2)
    assert dict(restored.window.tensor.items()) == dict(
        reference.window.tensor.items()
    )
