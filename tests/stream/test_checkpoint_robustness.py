"""Corrupt / truncated checkpoint directories fail loudly and recoverably."""

from __future__ import annotations

import json
import shutil

import pytest

from repro.exceptions import CheckpointError, ConfigurationError
from repro.stream.checkpoint import (
    ARRAYS_FILENAME,
    MANIFEST_FILENAME,
    is_checkpoint,
    load_checkpoint,
    load_experiment_snapshot,
    save_checkpoint,
    save_experiment_snapshot,
    sweep_stale_sibling_dirs,
)


@pytest.fixture
def checkpoint_dir(small_processor, tmp_path):
    small_processor.run(max_events=50)
    return save_checkpoint(tmp_path / "ckpt", small_processor)


@pytest.fixture
def snapshot_dir(small_stream, small_window_config, small_initial_factors, tmp_path):
    return save_experiment_snapshot(
        tmp_path / "snap",
        small_stream,
        small_window_config,
        small_initial_factors,
    )


class TestCorruptCheckpoint:
    def test_intact_checkpoint_loads(self, checkpoint_dir):
        assert is_checkpoint(checkpoint_dir)
        load_checkpoint(checkpoint_dir)

    def test_missing_directory_is_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_checkpoint(tmp_path / "nowhere")

    def test_missing_arrays_file(self, checkpoint_dir):
        (checkpoint_dir / ARRAYS_FILENAME).unlink()
        with pytest.raises(CheckpointError, match="incomplete"):
            load_checkpoint(checkpoint_dir)

    def test_missing_manifest_file(self, checkpoint_dir):
        (checkpoint_dir / MANIFEST_FILENAME).unlink()
        with pytest.raises(CheckpointError, match="incomplete"):
            load_checkpoint(checkpoint_dir)

    def test_truncated_npz(self, checkpoint_dir):
        arrays_path = checkpoint_dir / ARRAYS_FILENAME
        payload = arrays_path.read_bytes()
        arrays_path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(checkpoint_dir)

    def test_unparseable_manifest(self, checkpoint_dir):
        (checkpoint_dir / MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(checkpoint_dir)

    def test_manifest_holding_non_object(self, checkpoint_dir):
        (checkpoint_dir / MANIFEST_FILENAME).write_text(json.dumps([1, 2]))
        with pytest.raises(CheckpointError):
            load_checkpoint(checkpoint_dir)

    def test_missing_array_keys(self, checkpoint_dir, tmp_path):
        import numpy as np

        arrays_path = checkpoint_dir / ARRAYS_FILENAME
        with np.load(arrays_path) as payload:
            arrays = {key: payload[key] for key in payload.files}
        del arrays["heap_times"]
        np.savez(arrays_path, **arrays)
        with pytest.raises(CheckpointError, match="missing required arrays"):
            load_checkpoint(checkpoint_dir)

    def test_wrong_format_stays_configuration_error(self, checkpoint_dir):
        manifest = json.loads((checkpoint_dir / MANIFEST_FILENAME).read_text())
        manifest["format"] = "something-else"
        (checkpoint_dir / MANIFEST_FILENAME).write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError):
            load_checkpoint(checkpoint_dir)


class TestCorruptSnapshot:
    def test_intact_snapshot_loads(self, snapshot_dir):
        load_experiment_snapshot(snapshot_dir)

    def test_missing_arrays_file(self, snapshot_dir):
        (snapshot_dir / ARRAYS_FILENAME).unlink()
        with pytest.raises(CheckpointError, match="incomplete"):
            load_experiment_snapshot(snapshot_dir)

    def test_truncated_npz(self, snapshot_dir):
        arrays_path = snapshot_dir / ARRAYS_FILENAME
        payload = arrays_path.read_bytes()
        arrays_path.write_bytes(payload[:64])
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_experiment_snapshot(snapshot_dir)

    def test_unparseable_manifest(self, snapshot_dir):
        (snapshot_dir / MANIFEST_FILENAME).write_text("]")
        with pytest.raises(CheckpointError, match="cannot read"):
            load_experiment_snapshot(snapshot_dir)


class TestStaleSiblingSweep:
    def test_tmp_sibling_is_removed(self, checkpoint_dir):
        stale = checkpoint_dir.with_name(f"{checkpoint_dir.name}.tmp-9999")
        stale.mkdir()
        (stale / MANIFEST_FILENAME).write_text("{}")
        removed = sweep_stale_sibling_dirs(checkpoint_dir)
        assert stale in removed
        assert not stale.exists()
        assert is_checkpoint(checkpoint_dir)

    def test_old_sibling_is_removed_when_target_intact(self, checkpoint_dir):
        retired = checkpoint_dir.with_name(f"{checkpoint_dir.name}.old-9999")
        shutil.copytree(checkpoint_dir, retired)
        removed = sweep_stale_sibling_dirs(checkpoint_dir)
        assert retired in removed
        assert not retired.exists()
        assert is_checkpoint(checkpoint_dir)

    def test_complete_old_sibling_is_salvaged_when_target_missing(
        self, checkpoint_dir
    ):
        # The killed-mid-swap window: the target was renamed away but the
        # new state never moved in.  The retired copy is the last good state.
        retired = checkpoint_dir.with_name(f"{checkpoint_dir.name}.old-9999")
        checkpoint_dir.rename(retired)
        assert not checkpoint_dir.exists()
        sweep_stale_sibling_dirs(checkpoint_dir)
        assert is_checkpoint(checkpoint_dir)
        load_checkpoint(checkpoint_dir)

    def test_incomplete_old_sibling_is_not_salvaged(self, checkpoint_dir):
        retired = checkpoint_dir.with_name(f"{checkpoint_dir.name}.old-9999")
        checkpoint_dir.rename(retired)
        (retired / ARRAYS_FILENAME).unlink()
        sweep_stale_sibling_dirs(checkpoint_dir)
        assert not checkpoint_dir.exists()
        assert not retired.exists()

    def test_save_sweeps_leftover_tmp_dirs(self, small_processor, tmp_path):
        small_processor.run(max_events=50)
        target = tmp_path / "ckpt"
        stale = tmp_path / "ckpt.tmp-12345"
        stale.mkdir()
        (stale / "partial.npz").write_bytes(b"\x00" * 16)
        save_checkpoint(target, small_processor)
        assert not stale.exists()
        assert is_checkpoint(target)

    def test_sweep_without_siblings_is_a_noop(self, checkpoint_dir):
        assert sweep_stale_sibling_dirs(checkpoint_dir) == []
