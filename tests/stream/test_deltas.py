"""Unit tests for :mod:`repro.stream.deltas` (Definition 6)."""

from __future__ import annotations

import pytest

from repro.exceptions import ShapeError
from repro.stream.deltas import Delta
from repro.stream.events import EventKind, StreamRecord, WindowEvent

W = 5
RECORD = StreamRecord(indices=(2, 3), value=1.5, time=100.0)


def make_event(step: int) -> WindowEvent:
    return WindowEvent(
        time=RECORD.time + step * 10.0,
        sequence=0,
        kind=WindowEvent.kind_for_step(step, W),
        record=RECORD,
        step=step,
    )


class TestFromEvent:
    def test_arrival_adds_to_newest_unit(self):
        delta = Delta.from_event(make_event(0), W)
        assert delta.entries == (((2, 3, W - 1), 1.5),)
        assert delta.kind is EventKind.ARRIVAL
        assert delta.nnz == 1

    @pytest.mark.parametrize("step", [1, 2, 3, 4])
    def test_shift_moves_value_one_unit_older(self, step):
        delta = Delta.from_event(make_event(step), W)
        entries = dict(delta.entries)
        assert entries[(2, 3, W - step)] == -1.5
        assert entries[(2, 3, W - step - 1)] == 1.5
        assert delta.nnz == 2
        assert delta.kind is EventKind.SHIFT

    def test_expiry_subtracts_from_oldest_unit(self):
        delta = Delta.from_event(make_event(W), W)
        assert delta.entries == (((2, 3, 0), -1.5),)
        assert delta.kind is EventKind.EXPIRY

    def test_shift_conserves_mass(self):
        for step in range(1, W):
            delta = Delta.from_event(make_event(step), W)
            assert sum(value for _, value in delta.entries) == pytest.approx(0.0)

    def test_invalid_window_length_rejected(self):
        with pytest.raises(ShapeError):
            Delta.from_event(make_event(0), 0)

    def test_invalid_step_rejected(self):
        bad_event = WindowEvent(
            time=0.0, sequence=0, kind=EventKind.SHIFT, record=RECORD, step=W + 1
        )
        with pytest.raises(ShapeError):
            Delta.from_event(bad_event, W)


class TestAccessors:
    def test_categorical_and_time_indices(self):
        delta = Delta.from_event(make_event(2), W)
        assert delta.categorical_indices == (2, 3)
        assert delta.time_indices == (W - 2, W - 3)

    def test_value_at(self):
        delta = Delta.from_event(make_event(2), W)
        assert delta.value_at((2, 3, W - 2)) == -1.5
        assert delta.value_at((2, 3, W - 3)) == 1.5
        assert delta.value_at((0, 0, 0)) == 0.0
