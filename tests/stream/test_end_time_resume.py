"""Regression tests for pausing ``events()`` at ``end_time`` and resuming.

The early-return path of :meth:`ContinuousStreamProcessor.events` used to
pop the next event before noticing it fires past ``end_time``.  Two bugs
lurked there:

* a popped *arrival* was re-inserted into the scheduler instead of back onto
  the pending-record list, so ``n_pending_records`` lied, the record was no
  longer replayed through the arrival code path, and the detour consumed
  extra sequence numbers relative to an uninterrupted run, and
* a popped *scheduled* event was re-scheduled with a **fresh** sequence
  number, so when several events shared a fire time, pausing between them
  reordered the survivors relative to an uninterrupted run.

The fix checks ``end_time`` against the *peeked* fire time before popping
anything, so pausing touches no state at all: a run paused at arbitrary
``end_time`` values and resumed must be indistinguishable from an
uninterrupted one — same events, same order, same sequence numbers, each
event exactly once, and a bit-identical window.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.events import EventKind, StreamRecord
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig


def event_key(event):
    return (event.time, event.sequence, event.kind, event.record, event.step)


def replay_with_pauses(stream, config, start_time, end_times):
    """Drive events() across several end_time segments, then drain fully."""
    processor = ContinuousStreamProcessor(stream, config, start_time=start_time)
    observed = []
    for end_time in end_times:
        observed.extend(
            event_key(event) for event, _ in processor.events(end_time=end_time)
        )
    observed.extend(event_key(event) for event, _ in processor.events())
    return processor, observed


@st.composite
def pause_case(draw):
    n_modes = draw(st.integers(min_value=1, max_value=2))
    mode_sizes = tuple(
        draw(st.integers(min_value=2, max_value=4)) for _ in range(n_modes)
    )
    window_length = draw(st.integers(min_value=1, max_value=4))
    period = float(draw(st.integers(min_value=1, max_value=3)))
    n_records = draw(st.integers(min_value=2, max_value=14))
    records = []
    time = 0.0
    for _ in range(n_records):
        # Integer-ish gaps maximise exact time collisions between shifts of
        # different records — the regime where pause ordering matters.
        time += float(draw(st.integers(min_value=0, max_value=3)))
        indices = tuple(
            draw(st.integers(min_value=0, max_value=size - 1)) for size in mode_sizes
        )
        value = float(draw(st.integers(min_value=1, max_value=5)))
        records.append(StreamRecord(indices=indices, value=value, time=time))
    stream = MultiAspectStream(records, mode_sizes=mode_sizes)
    config = WindowConfig(
        mode_sizes=mode_sizes, window_length=window_length, period=period
    )
    start_time = float(draw(st.integers(min_value=0, max_value=int(time) + 2)))
    horizon = time + (window_length + 1) * period
    n_pauses = draw(st.integers(min_value=1, max_value=5))
    end_times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=horizon, allow_nan=False),
                min_size=n_pauses,
                max_size=n_pauses,
            )
        )
    )
    return stream, config, start_time, end_times


@given(pause_case())
@settings(max_examples=100, deadline=None)
def test_paused_and_resumed_run_matches_uninterrupted(case):
    stream, config, start_time, end_times = case
    uninterrupted = ContinuousStreamProcessor(stream, config, start_time=start_time)
    expected = [event_key(event) for event, _ in uninterrupted.events()]
    resumed, observed = replay_with_pauses(stream, config, start_time, end_times)
    assert observed == expected  # same events, same order, none dropped/doubled
    assert dict(resumed.window.tensor.items()) == dict(
        uninterrupted.window.tensor.items()
    )
    assert resumed.n_events_emitted == uninterrupted.n_events_emitted


@given(pause_case())
@settings(max_examples=60, deadline=None)
def test_pause_is_idempotent_and_keeps_pending_counts_truthful(case):
    stream, config, start_time, end_times = case
    reference = ContinuousStreamProcessor(stream, config, start_time=start_time)
    paused = ContinuousStreamProcessor(stream, config, start_time=start_time)
    end_time = end_times[0]
    n_reference = reference.run(end_time=end_time)
    n_paused = paused.run(end_time=end_time)
    # Calling events() again with the same end_time must be a no-op.
    assert paused.run(end_time=end_time) == 0
    assert n_paused == n_reference
    assert paused.n_pending_records == reference.n_pending_records
    assert dict(paused.window.tensor.items()) == dict(
        reference.window.tensor.items()
    )


def test_arrival_past_end_time_returns_to_pending_records():
    records = [
        StreamRecord(indices=(0,), value=1.0, time=0.0),
        StreamRecord(indices=(1,), value=2.0, time=5.0),
    ]
    stream = MultiAspectStream(records, mode_sizes=(2,))
    config = WindowConfig(mode_sizes=(2,), window_length=2, period=1.0)
    processor = ContinuousStreamProcessor(stream, config, start_time=2.0)
    before = processor.n_pending_records
    # Everything up to t=4 is shifts/expiries of the first record; the
    # arrival at t=5 is popped, found late, and must go back to the list.
    processor.run(end_time=4.0)
    assert processor.n_pending_records == before
    n_after = processor.run(end_time=5.0)
    assert processor.n_pending_records == before - 1
    assert n_after >= 1


def test_tie_order_preserved_when_pausing_between_simultaneous_shifts():
    # Two records one period apart with the same categorical index: their
    # shift chains collide at every subsequent period boundary.
    records = [
        StreamRecord(indices=(0,), value=1.0, time=1.0),
        StreamRecord(indices=(0,), value=3.0, time=2.0),
    ]
    stream = MultiAspectStream(records, mode_sizes=(1,))
    config = WindowConfig(mode_sizes=(1,), window_length=3, period=1.0)

    uninterrupted = ContinuousStreamProcessor(stream, config, start_time=2.0)
    expected = [
        (event.time, event.sequence, event.kind, event.step)
        for event, _ in uninterrupted.events()
    ]
    collision_times = sorted(
        {time for time, _, _, _ in expected}
    )
    processor = ContinuousStreamProcessor(stream, config, start_time=2.0)
    observed = []
    for boundary in collision_times:
        # Pause just before each collision instant, so every simultaneous
        # group is interrupted mid-flight at least once.
        observed.extend(
            (event.time, event.sequence, event.kind, event.step)
            for event, _ in processor.events(end_time=boundary - 0.5)
        )
        observed.extend(
            (event.time, event.sequence, event.kind, event.step)
            for event, _ in processor.events(end_time=boundary)
        )
    observed.extend(
        (event.time, event.sequence, event.kind, event.step)
        for event, _ in processor.events()
    )
    assert observed == expected
    assert EventKind.SHIFT in {kind for _, _, kind, _ in expected}
