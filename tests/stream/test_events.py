"""Unit tests for :mod:`repro.stream.events`."""

from __future__ import annotations

import pytest

from repro.exceptions import ShapeError
from repro.stream.events import EventKind, StreamRecord, WindowEvent


class TestStreamRecord:
    def test_fields_are_normalised(self):
        record = StreamRecord(indices=[1, 2], value=3, time=10)
        assert record.indices == (1, 2)
        assert isinstance(record.value, float)
        assert isinstance(record.time, float)

    def test_empty_indices_rejected(self):
        with pytest.raises(ShapeError):
            StreamRecord(indices=(), value=1.0, time=0.0)

    def test_negative_index_rejected(self):
        with pytest.raises(ShapeError):
            StreamRecord(indices=(0, -1), value=1.0, time=0.0)

    def test_records_are_hashable_and_comparable(self):
        a = StreamRecord((0, 1), 1.0, 2.0)
        b = StreamRecord((0, 1), 1.0, 2.0)
        assert a == b
        assert hash(a) == hash(b)


class TestWindowEvent:
    def test_ordering_by_time_then_sequence(self):
        record = StreamRecord((0,), 1.0, 0.0)
        early = WindowEvent(time=1.0, sequence=5, kind=EventKind.ARRIVAL, record=record, step=0)
        later = WindowEvent(time=2.0, sequence=0, kind=EventKind.ARRIVAL, record=record, step=0)
        tie = WindowEvent(time=1.0, sequence=6, kind=EventKind.SHIFT, record=record, step=1)
        assert early < later
        assert early < tie

    @pytest.mark.parametrize(
        ("step", "window", "expected"),
        [
            (0, 5, EventKind.ARRIVAL),
            (1, 5, EventKind.SHIFT),
            (4, 5, EventKind.SHIFT),
            (5, 5, EventKind.EXPIRY),
        ],
    )
    def test_kind_for_step(self, step, window, expected):
        assert WindowEvent.kind_for_step(step, window) is expected

    @pytest.mark.parametrize("step", [-1, 6])
    def test_kind_for_invalid_step_rejected(self, step):
        with pytest.raises(ShapeError):
            WindowEvent.kind_for_step(step, 5)
