"""Live ingestion (`extend`) and the concurrent-iteration guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    ConcurrentIterationError,
    IndexOutOfBoundsError,
    ShapeError,
    StreamOrderError,
)
from repro.stream.events import StreamRecord
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig


def _processor(records, mode_sizes=(3, 2), window_length=3, period=10.0, start_time=None):
    stream = MultiAspectStream(records, mode_sizes=mode_sizes)
    config = WindowConfig(
        mode_sizes=mode_sizes, window_length=window_length, period=period
    )
    return ContinuousStreamProcessor(stream, config, start_time=start_time)


@pytest.fixture
def live_processor(tiny_records):
    # start_time 30.0: the record at t=33 stays pending, so the horizon is 33.
    return _processor(tiny_records, start_time=30.0)


class TestExtend:
    def test_horizon_starts_at_newest_pending_record(self, live_processor):
        assert live_processor.ingest_horizon == 33.0

    def test_horizon_without_pending_records_is_start_time(self, tiny_records):
        processor = _processor(tiny_records, start_time=40.0)
        assert processor.ingest_horizon == 40.0

    def test_extend_appends_and_advances_horizon(self, live_processor):
        added = live_processor.extend(
            [
                StreamRecord(indices=(0, 0), value=1.0, time=35.0),
                StreamRecord(indices=(1, 1), value=2.0, time=40.0),
            ]
        )
        assert added == 2
        assert live_processor.ingest_horizon == 40.0
        assert live_processor.n_pending_records == 3

    def test_extended_records_replay_in_order(self, live_processor):
        live_processor.extend(
            [StreamRecord(indices=(0, 0), value=1.0, time=35.0)]
        )
        arrival_times = [
            event.record.time
            for event, _ in live_processor.events()
            if event.step == 0
        ]
        assert arrival_times == [33.0, 35.0]

    def test_extend_equivalent_to_fixed_stream(self, tiny_records):
        """Feeding records live produces the same state as a fixed stream."""
        fixed = _processor(tiny_records, start_time=30.0)
        live = _processor(
            [r for r in tiny_records if r.time <= 30.0], start_time=30.0
        )
        live.extend([r for r in tiny_records if r.time > 30.0])
        fixed.run()
        live.run()
        fixed_items = dict(fixed.window.tensor.items())
        live_items = dict(live.window.tensor.items())
        assert fixed_items == live_items

    def test_empty_extend_is_a_noop(self, live_processor):
        assert live_processor.extend([]) == 0
        assert live_processor.ingest_horizon == 33.0

    def test_tie_with_horizon_is_allowed(self, live_processor):
        live_processor.extend(
            [StreamRecord(indices=(0, 0), value=1.0, time=33.0)]
        )
        assert live_processor.n_pending_records == 2

    def test_rejects_record_before_horizon(self, live_processor):
        with pytest.raises(StreamOrderError, match="ingest horizon"):
            live_processor.extend(
                [StreamRecord(indices=(0, 0), value=1.0, time=32.0)]
            )

    def test_rejects_unordered_chunk(self, live_processor):
        with pytest.raises(StreamOrderError):
            live_processor.extend(
                [
                    StreamRecord(indices=(0, 0), value=1.0, time=40.0),
                    StreamRecord(indices=(0, 0), value=1.0, time=35.0),
                ]
            )

    def test_rejects_record_inside_initial_window(self, tiny_records):
        processor = _processor(tiny_records, start_time=40.0)
        with pytest.raises(StreamOrderError, match="initial window"):
            processor.extend(
                [StreamRecord(indices=(0, 0), value=1.0, time=40.0)]
            )

    def test_rejects_wrong_arity(self, live_processor):
        with pytest.raises(ShapeError):
            live_processor.extend(
                [StreamRecord(indices=(0, 0, 0), value=1.0, time=50.0)]
            )

    def test_rejects_out_of_bounds_index(self, live_processor):
        with pytest.raises(IndexOutOfBoundsError):
            live_processor.extend(
                [StreamRecord(indices=(3, 0), value=1.0, time=50.0)]
            )

    def test_failed_extend_leaves_state_untouched(self, live_processor):
        before = live_processor.n_pending_records
        with pytest.raises(StreamOrderError):
            live_processor.extend(
                [
                    StreamRecord(indices=(0, 0), value=1.0, time=35.0),
                    StreamRecord(indices=(0, 0), value=1.0, time=34.0),
                ]
            )
        assert live_processor.n_pending_records == before
        assert live_processor.ingest_horizon == 33.0

    def test_horizon_round_trips_through_checkpoint(self, live_processor, tmp_path):
        live_processor.extend(
            [StreamRecord(indices=(0, 0), value=1.0, time=50.0)]
        )
        live_processor.run(end_time=55.0)  # drain everything: no pending records
        assert live_processor.n_pending_records == 0
        live_processor.save_checkpoint(tmp_path / "ckpt")
        restored = ContinuousStreamProcessor.from_checkpoint(tmp_path / "ckpt")
        # Without the persisted horizon this would fall back to start_time
        # and wrongly accept records older than 50.
        assert restored.ingest_horizon == 50.0
        with pytest.raises(StreamOrderError):
            restored.extend(
                [StreamRecord(indices=(0, 0), value=1.0, time=45.0)]
            )


class TestConcurrentIterationGuard:
    def test_second_events_iteration_is_rejected(self, small_processor):
        iterator = small_processor.events(max_events=50)
        next(iterator)
        with pytest.raises(ConcurrentIterationError):
            next(small_processor.events())
        iterator.close()

    def test_iter_batches_during_events_is_rejected(self, small_processor):
        iterator = small_processor.events(max_events=50)
        next(iterator)
        with pytest.raises(ConcurrentIterationError):
            next(small_processor.iter_batches())
        iterator.close()

    def test_events_during_iter_batches_is_rejected(self, small_processor):
        iterator = small_processor.iter_batches(max_events=50)
        batch = next(iterator)
        small_processor.window.apply_batch(batch)
        with pytest.raises(ConcurrentIterationError):
            next(small_processor.events())
        iterator.close()

    def test_extend_during_iteration_is_rejected(self, small_processor):
        iterator = small_processor.events(max_events=50)
        next(iterator)
        with pytest.raises(ConcurrentIterationError):
            small_processor.extend(
                [StreamRecord(indices=(0, 0), value=1.0, time=1e9)]
            )
        iterator.close()

    def test_exhausted_iteration_releases_the_guard(self, small_processor):
        for _ in small_processor.events(max_events=10):
            pass
        # A fresh iteration must be allowed again.
        assert sum(1 for _ in small_processor.events(max_events=10)) == 10

    def test_closed_iteration_releases_the_guard(self, small_processor):
        iterator = small_processor.events(max_events=10)
        next(iterator)
        iterator.close()
        assert sum(1 for _ in small_processor.events(max_events=10)) == 10

    def test_paused_end_time_iteration_releases_the_guard(self, small_processor):
        start = small_processor.start_time
        for _ in small_processor.events(end_time=start + 5.0):
            pass
        for _ in small_processor.events(end_time=start + 10.0):
            pass

    def test_guard_error_is_also_a_runtime_error(self, small_processor):
        iterator = small_processor.iter_batches(max_events=5)
        next(iterator)
        with pytest.raises(RuntimeError):
            next(small_processor.iter_batches())
        iterator.close()
