"""Unit tests for the event-driven continuous tensor model (Algorithm 1)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.stream.events import EventKind, StreamRecord
from repro.stream.processor import ContinuousStreamProcessor, bootstrap_window
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig
from repro.tensor.sparse import SparseTensor


def oracle_window(
    stream: MultiAspectStream, config: WindowConfig, time: float
) -> SparseTensor:
    """Brute-force construction of D(time, W) straight from Definition 4."""
    tensor = SparseTensor(config.shape)
    for record in stream:
        if record.time > time:
            continue
        elapsed = time - record.time
        offset = int(math.floor(elapsed / config.period + 1e-9))
        if offset >= config.window_length:
            continue
        unit = config.window_length - 1 - offset
        tensor.add((*record.indices, unit), record.value)
    return tensor


class TestBootstrap:
    def test_initial_window_matches_oracle(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        start = 25.0
        processor = ContinuousStreamProcessor(tiny_stream, config, start_time=start)
        expected = oracle_window(tiny_stream, config, start)
        assert processor.window.tensor.allclose(expected)

    def test_default_start_time_covers_one_window_span(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        processor = ContinuousStreamProcessor(tiny_stream, config)
        assert processor.start_time == tiny_stream.start_time + config.span

    def test_records_after_start_are_pending(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        processor = ContinuousStreamProcessor(tiny_stream, config, start_time=12.0)
        assert processor.n_pending_records == 2  # records at t=21 and t=33

    def test_empty_stream_rejected(self):
        config = WindowConfig(mode_sizes=(2,), window_length=2, period=1.0)
        with pytest.raises(ConfigurationError):
            ContinuousStreamProcessor(MultiAspectStream([]), config)

    def test_mode_size_mismatch_rejected(self, tiny_stream):
        config = WindowConfig(mode_sizes=(4, 4), window_length=3, period=10.0)
        with pytest.raises(ConfigurationError):
            ContinuousStreamProcessor(tiny_stream, config)

    def test_bootstrap_window_helper(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        window, processor = bootstrap_window(tiny_stream, config, start_time=25.0)
        assert window is processor.window


class TestEventReplay:
    def test_each_record_causes_w_plus_one_events(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        processor = ContinuousStreamProcessor(
            tiny_stream, config, start_time=-1.0
        )  # nothing in the initial window
        events = list(processor.events())
        assert len(events) == len(tiny_stream) * (config.window_length + 1)
        arrivals = [e for e, _ in events if e.kind is EventKind.ARRIVAL]
        expiries = [e for e, _ in events if e.kind is EventKind.EXPIRY]
        assert len(arrivals) == len(tiny_stream)
        assert len(expiries) == len(tiny_stream)

    def test_events_are_chronological(self, small_processor):
        previous = -math.inf
        for event, _ in small_processor.events(max_events=500):
            assert event.time >= previous
            previous = event.time

    def test_window_matches_oracle_throughout_replay(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        processor = ContinuousStreamProcessor(tiny_stream, config, start_time=10.0)
        # Several events can fire at the same instant (e.g. two records with
        # equal timestamps); the Definition-4 oracle only applies once every
        # event of that instant has been processed, so compare the snapshot of
        # the last event at each distinct timestamp.
        snapshots = [
            (event.time, processor.window.tensor.copy())
            for event, _ in processor.events()
        ]
        for position, (time, snapshot) in enumerate(snapshots):
            is_last_at_time = (
                position == len(snapshots) - 1 or snapshots[position + 1][0] > time
            )
            if not is_last_at_time:
                continue
            expected = oracle_window(tiny_stream, config, time)
            assert snapshot.allclose(expected), (
                f"window diverged from Definition 4 at event time {time}"
            )

    def test_window_empties_after_everything_expires(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        processor = ContinuousStreamProcessor(tiny_stream, config, start_time=-1.0)
        processor.run()
        assert processor.window.nnz == 0

    def test_max_events_limits_emission(self, small_processor):
        events = list(small_processor.events(max_events=17))
        assert len(events) == 17

    def test_end_time_stops_and_resumes(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        processor = ContinuousStreamProcessor(tiny_stream, config, start_time=10.0)
        first = list(processor.events(end_time=25.0))
        assert all(event.time <= 25.0 for event, _ in first)
        rest = list(processor.events())
        assert all(event.time > 25.0 - 1e-9 for event, _ in rest)
        # Together they process every scheduled event exactly once.
        final_expected = oracle_window(tiny_stream, config, rest[-1][0].time)
        assert processor.window.tensor.allclose(final_expected)

    def test_include_expiry_false_hides_expiries_but_applies_them(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=3, period=10.0)
        processor = ContinuousStreamProcessor(tiny_stream, config, start_time=-1.0)
        kinds = {
            event.kind for event, _ in processor.events(include_expiry=False)
        }
        assert EventKind.EXPIRY not in kinds
        assert processor.window.nnz == 0  # expiries were still applied

    def test_run_returns_event_count(self, tiny_stream):
        config = WindowConfig(mode_sizes=(3, 2), window_length=2, period=10.0)
        processor = ContinuousStreamProcessor(tiny_stream, config, start_time=-1.0)
        assert processor.run() == len(tiny_stream) * 3

    def test_delta_matches_window_change(self, small_stream, small_window_config):
        """Applying the yielded delta to the previous window state gives the new state."""
        processor = ContinuousStreamProcessor(small_stream, small_window_config)
        previous = processor.window.tensor.copy()
        for event, delta in processor.events(max_events=200):
            for coordinate, value in delta.entries:
                previous.add(coordinate, value)
            assert previous.allclose(processor.window.tensor)
