"""Property-based tests for the continuous tensor model.

The central invariant: at every instant, the event-driven window equals the
window built directly from Definition 4 (the "oracle"), for arbitrary small
streams and window configurations.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.events import StreamRecord
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.stream import MultiAspectStream
from repro.stream.window import WindowConfig
from repro.tensor.sparse import SparseTensor


@st.composite
def stream_and_config(draw):
    """A small random stream plus a compatible window configuration."""
    n_modes = draw(st.integers(min_value=1, max_value=2))
    mode_sizes = tuple(
        draw(st.integers(min_value=1, max_value=4)) for _ in range(n_modes)
    )
    window_length = draw(st.integers(min_value=1, max_value=4))
    period = float(draw(st.integers(min_value=1, max_value=5)))
    n_records = draw(st.integers(min_value=1, max_value=15))
    records = []
    time = 0.0
    for _ in range(n_records):
        time += float(draw(st.integers(min_value=0, max_value=7)))
        indices = tuple(
            draw(st.integers(min_value=0, max_value=size - 1)) for size in mode_sizes
        )
        value = float(draw(st.integers(min_value=1, max_value=5)))
        records.append(StreamRecord(indices=indices, value=value, time=time))
    stream = MultiAspectStream(records, mode_sizes=mode_sizes)
    config = WindowConfig(
        mode_sizes=mode_sizes, window_length=window_length, period=period
    )
    start_time = float(draw(st.integers(min_value=0, max_value=int(time) + 3)))
    return stream, config, start_time


def oracle_window(stream, config, time):
    tensor = SparseTensor(config.shape)
    for record in stream:
        if record.time > time:
            continue
        offset = int(math.floor((time - record.time) / config.period + 1e-9))
        if offset >= config.window_length:
            continue
        tensor.add((*record.indices, config.window_length - 1 - offset), record.value)
    return tensor


@given(stream_and_config())
@settings(max_examples=80, deadline=None)
def test_event_driven_window_equals_definition_4(case):
    stream, config, start_time = case
    processor = ContinuousStreamProcessor(stream, config, start_time=start_time)
    assert processor.window.tensor.allclose(oracle_window(stream, config, start_time))
    # Multiple events may fire at the same instant, so the Definition-4 oracle
    # only applies once all events of that instant have been processed:
    # compare the snapshot of the last event at each distinct timestamp.
    snapshots = [
        (event.time, processor.window.tensor.copy())
        for event, _ in processor.events()
    ]
    for position, (time, snapshot) in enumerate(snapshots):
        is_last_at_time = (
            position == len(snapshots) - 1 or snapshots[position + 1][0] > time
        )
        if is_last_at_time:
            assert snapshot.allclose(oracle_window(stream, config, time))


@given(stream_and_config())
@settings(max_examples=60, deadline=None)
def test_every_delta_has_at_most_two_entries_and_conserves_shift_mass(case):
    stream, config, start_time = case
    processor = ContinuousStreamProcessor(stream, config, start_time=start_time)
    for event, delta in processor.events():
        assert 1 <= delta.nnz <= 2
        if delta.nnz == 2:
            assert sum(value for _, value in delta.entries) == 0.0
