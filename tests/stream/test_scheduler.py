"""Unit tests for :mod:`repro.stream.scheduler`."""

from __future__ import annotations

import pytest

from repro.stream.events import EventKind, StreamRecord
from repro.stream.scheduler import EventScheduler

RECORD = StreamRecord(indices=(0,), value=1.0, time=0.0)


class TestEventScheduler:
    def test_events_pop_in_time_order(self):
        scheduler = EventScheduler()
        scheduler.schedule(5.0, EventKind.SHIFT, RECORD, 1)
        scheduler.schedule(1.0, EventKind.ARRIVAL, RECORD, 0)
        scheduler.schedule(3.0, EventKind.SHIFT, RECORD, 1)
        times = [event.time for event in scheduler.drain()]
        assert times == [1.0, 3.0, 5.0]

    def test_ties_break_by_insertion_order(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(2.0, EventKind.SHIFT, RECORD, 1)
        second = scheduler.schedule(2.0, EventKind.EXPIRY, RECORD, 2)
        # The heap stores raw tuples, so pop() materialises equal (not
        # identical) WindowEvent objects.
        assert scheduler.pop() == first
        assert scheduler.pop() == second

    def test_raw_roundtrip_matches_schedule(self):
        scheduler = EventScheduler()
        scheduler.push_raw(1.0, EventKind.ARRIVAL, RECORD, 0)
        event = scheduler.pop()
        assert event.time == 1.0
        assert event.sequence == 0
        assert event.kind is EventKind.ARRIVAL
        assert event.record is RECORD
        assert event.step == 0

    def test_begin_end_drain_roundtrip(self):
        scheduler = EventScheduler()
        scheduler.schedule(2.0, EventKind.SHIFT, RECORD, 1)
        heap, sequence = scheduler.begin_drain()
        assert heap[0] == (2.0, 0, EventKind.SHIFT, RECORD, 1)
        scheduler.end_drain(sequence + 3)
        assert scheduler.schedule(3.0, EventKind.EXPIRY, RECORD, 2).sequence == 4
        with pytest.raises(ValueError):
            scheduler.end_drain(0)  # counter may only advance

    def test_peek_time(self):
        scheduler = EventScheduler()
        assert scheduler.peek_time() is None
        scheduler.schedule(4.0, EventKind.ARRIVAL, RECORD, 0)
        assert scheduler.peek_time() == 4.0
        assert len(scheduler) == 1

    def test_pop_until(self):
        scheduler = EventScheduler()
        for time in (1.0, 2.0, 3.0, 4.0):
            scheduler.schedule(time, EventKind.ARRIVAL, RECORD, 0)
        popped = [event.time for event in scheduler.pop_until(2.5)]
        assert popped == [1.0, 2.0]
        assert len(scheduler) == 2

    def test_sequence_numbers_increase(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(1.0, EventKind.ARRIVAL, RECORD, 0)
        second = scheduler.schedule(1.0, EventKind.ARRIVAL, RECORD, 0)
        assert second.sequence > first.sequence
