"""Sharded checkpoint/restore: interrupt → restore → continue must be exact.

Sharded runs relax consistency *within* the pipeline, but their durability
contract is as strict as the exact path's: for every variant × kernel
backend, a run interrupted at a batch boundary (and mid staleness interval
— the checkpoint lands between Gram synchronizations) and restored must
continue bit-identically to the uninterrupted sharded run.  The executor's
aux entries (batch counter + factor/Gram snapshot) riding in the model's
``state_dict`` are what makes that possible: the refresh schedule, the
stateless per-(batch, shard) sample generators, and the snapshot every
shard reads all line up again after the restore.

Batch boundaries are the natural interruption points because sharded
semantics are *batch-defined*: the plan partitions one batch's events, and
the snapshot refresh schedule counts batches.  This is also how the
streaming service operates — chunks are applied as whole batches and
checkpoints are taken between them, never inside one.  (Splitting a batch
in two is still a *valid* relaxed execution, just a different one — the
per-event exact path is the only engine whose results are invariant to
batch boundaries.)

The ``numba`` backend degrades to the numpy reference when numba is not
importable (this is exercised either way — resolution happens inside the
model), so the suite runs on any box.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.als.als import decompose
from repro.core.base import SNSConfig
from repro.core.registry import ALGORITHMS, create_algorithm
from repro.data.generators import generate_synthetic_stream
from repro.stream.checkpoint import restore_run
from repro.stream.processor import ContinuousStreamProcessor
from repro.stream.window import WindowConfig

FACTOR_TOLERANCE = 1e-12
MODE_SIZES = (6, 5)
RANK = 3
SHARDS = 3
#: Staleness of 2 with an interruption after an odd number of batches makes
#: the checkpoint land inside a synchronization interval — the restore must
#: reproduce the snapshot the remaining batches would have read.
STALENESS = 2
BATCH_WINDOW = 2.0
N_BATCHES = 30


@pytest.fixture(scope="module")
def sharded_setup():
    stream = generate_synthetic_stream(
        mode_sizes=MODE_SIZES,
        rank=RANK,
        n_records=400,
        period=10.0,
        records_per_period=30.0,
        seed=3,
    )
    config = WindowConfig(mode_sizes=MODE_SIZES, window_length=3, period=10.0)
    processor = ContinuousStreamProcessor(stream, config)
    initial = decompose(processor.window.tensor, rank=RANK, n_iterations=5, seed=0)
    return stream, config, initial.decomposition


def build_run(sharded_setup, variant: str, backend: str):
    stream, config, initial = sharded_setup
    processor = ContinuousStreamProcessor(stream, config)
    with warnings.catch_warnings():
        # backend="numba" degrades to numpy with a warning when numba is
        # not importable; that fallback is part of what this suite covers.
        warnings.simplefilter("ignore")
        model = create_algorithm(
            variant,
            SNSConfig(
                rank=RANK,
                theta=5,
                eta=1000.0,
                seed=0,
                backend=backend,
                shards=SHARDS,
                staleness=STALENESS,
            ),
        )
        model.initialize(processor.window, initial)
    return processor, model


def advance_batches(processor, model, n_batches: int) -> int:
    """Apply the next ``n_batches`` whole batches (the service drain shape)."""
    applied = 0
    batches = processor.iter_batches(batch_window=BATCH_WINDOW)
    try:
        for batch in batches:
            model.update_batch(batch)
            applied += 1
            if applied >= n_batches:
                break
    finally:
        batches.close()  # release the processor's single-drain guard
    return applied


@pytest.mark.parametrize("backend", ["numpy", "numba"])
@pytest.mark.parametrize("variant", sorted(ALGORITHMS))
def test_sharded_resume_matches_uninterrupted_run(
    sharded_setup, tmp_path, variant, backend
):
    reference_processor, reference_model = build_run(sharded_setup, variant, backend)
    n_reference = advance_batches(reference_processor, reference_model, N_BATCHES)
    assert n_reference == N_BATCHES
    assert reference_model._sharded is not None

    half = N_BATCHES // 2 - 1  # 14 % (STALENESS + 1) != 0: mid interval
    paused_processor, paused_model = build_run(sharded_setup, variant, backend)
    advance_batches(paused_processor, paused_model, half)
    assert paused_model._sharded.batch_counter % (STALENESS + 1) != 0
    paused_processor.save_checkpoint(tmp_path / "ckpt", model=paused_model)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        restored_processor, restored_model, _ = restore_run(tmp_path / "ckpt")
    assert restored_model is not None
    assert restored_model._sharded is not None
    # Executor bookkeeping restored: same point in the refresh schedule.
    assert (
        restored_model._sharded.batch_counter
        == paused_model._sharded.batch_counter
    )
    advance_batches(restored_processor, restored_model, N_BATCHES - half)

    assert dict(restored_processor.window.tensor.items()) == dict(
        reference_processor.window.tensor.items()
    )
    assert (
        restored_processor.n_events_emitted
        == reference_processor.n_events_emitted
    )
    assert restored_model.n_updates == reference_model.n_updates
    assert (
        restored_model._sharded.batch_counter
        == reference_model._sharded.batch_counter
        == N_BATCHES
    )
    scale = max(
        1.0, max(float(np.max(np.abs(f))) for f in reference_model.factors)
    )
    for mode, (restored, reference) in enumerate(
        zip(restored_model.factors, reference_model.factors)
    ):
        deviation = float(np.max(np.abs(restored - reference)))
        assert deviation <= FACTOR_TOLERANCE * scale, (
            f"factor {mode} deviates by {deviation:.3e} after sharded resume "
            f"(bound {FACTOR_TOLERANCE * scale:.3e})"
        )
    assert restored_model.fitness() == pytest.approx(
        reference_model.fitness(), rel=1e-12, abs=1e-12
    )


def test_old_checkpoints_restore_onto_exact_path(sharded_setup, tmp_path):
    """A checkpoint saved without sharding keys restores as shards=1."""
    stream, config, initial = sharded_setup
    processor = ContinuousStreamProcessor(stream, config)
    model = create_algorithm(
        "sns_vec", SNSConfig(rank=RANK, theta=5, eta=1000.0, seed=0)
    )
    model.initialize(processor.window, initial)
    processor.run_batched(model=model, max_events=50)
    processor.save_checkpoint(tmp_path / "ckpt", model=model)
    _, restored, _ = restore_run(tmp_path / "ckpt")
    assert restored is not None
    assert restored.config.shards == 1
    assert restored.config.staleness == 0
    assert restored._sharded is None
