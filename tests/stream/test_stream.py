"""Unit tests for :mod:`repro.stream.stream`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import IndexOutOfBoundsError, ShapeError, StreamOrderError
from repro.stream.events import StreamRecord
from repro.stream.stream import MultiAspectStream


class TestConstruction:
    def test_basic_properties(self, tiny_stream):
        assert len(tiny_stream) == 5
        assert tiny_stream.mode_sizes == (3, 2)
        assert tiny_stream.order == 3
        assert tiny_stream.start_time == 0.0
        assert tiny_stream.end_time == 33.0
        assert tiny_stream.duration == 33.0

    def test_mode_sizes_inferred_when_omitted(self, tiny_records):
        stream = MultiAspectStream(tiny_records)
        assert stream.mode_sizes == (3, 2)

    def test_default_mode_names(self, tiny_stream):
        assert tiny_stream.mode_names == ("mode_0", "mode_1")

    def test_custom_mode_names(self, tiny_records):
        stream = MultiAspectStream(
            tiny_records, mode_sizes=(3, 2), mode_names=("src", "dst")
        )
        assert stream.mode_names == ("src", "dst")

    def test_wrong_number_of_mode_names_rejected(self, tiny_records):
        with pytest.raises(ShapeError):
            MultiAspectStream(tiny_records, mode_sizes=(3, 2), mode_names=("only",))

    def test_out_of_order_records_rejected(self):
        records = [StreamRecord((0,), 1.0, 5.0), StreamRecord((0,), 1.0, 1.0)]
        with pytest.raises(StreamOrderError):
            MultiAspectStream(records, mode_sizes=(1,))

    def test_sort_flag_sorts(self):
        records = [StreamRecord((0,), 1.0, 5.0), StreamRecord((0,), 2.0, 1.0)]
        stream = MultiAspectStream(records, mode_sizes=(1,), sort=True)
        assert [r.time for r in stream] == [1.0, 5.0]

    def test_index_exceeding_mode_size_rejected(self):
        with pytest.raises(IndexOutOfBoundsError):
            MultiAspectStream([StreamRecord((5,), 1.0, 0.0)], mode_sizes=(3,))

    def test_inconsistent_arity_rejected(self):
        records = [StreamRecord((0, 1), 1.0, 0.0), StreamRecord((0,), 1.0, 1.0)]
        with pytest.raises(ShapeError):
            MultiAspectStream(records)

    def test_empty_stream_properties_raise(self):
        stream = MultiAspectStream([])
        with pytest.raises(StreamOrderError):
            _ = stream.start_time
        with pytest.raises(StreamOrderError):
            _ = stream.end_time


class TestFromArrays:
    def test_roundtrip(self):
        indices = np.array([[0, 1], [2, 0], [1, 1]])
        values = np.array([1.0, 2.0, 3.0])
        times = np.array([0.0, 1.0, 2.0])
        stream = MultiAspectStream.from_arrays(indices, values, times)
        assert len(stream) == 3
        assert stream[1].indices == (2, 0)
        assert stream[2].value == 3.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            MultiAspectStream.from_arrays(
                np.zeros((3, 2)), np.zeros(2), np.zeros(3)
            )

    def test_one_dimensional_indices_rejected(self):
        with pytest.raises(ShapeError):
            MultiAspectStream.from_arrays(np.zeros(3), np.zeros(3), np.zeros(3))


class TestCsvRoundtrip:
    def test_to_and_from_csv(self, tiny_stream, tmp_path):
        path = tmp_path / "stream.csv"
        tiny_stream.to_csv(path)
        loaded = MultiAspectStream.from_csv(path, mode_sizes=(3, 2))
        assert len(loaded) == len(tiny_stream)
        for original, loaded_record in zip(tiny_stream, loaded):
            assert original == loaded_record

    def test_from_csv_without_header(self, tiny_stream, tmp_path):
        path = tmp_path / "stream_no_header.csv"
        tiny_stream.to_csv(path, mode_header=False)
        loaded = MultiAspectStream.from_csv(path, has_header=False)
        assert len(loaded) == len(tiny_stream)


class TestSlicing:
    def test_between_is_half_open(self, tiny_stream):
        window = tiny_stream.between(0.0, 12.0)
        assert [r.time for r in window] == [5.0, 12.0]

    def test_head(self, tiny_stream):
        assert len(tiny_stream.head(2)) == 2

    def test_value_total_and_max(self, tiny_stream):
        assert tiny_stream.value_total() == pytest.approx(8.0)
        assert tiny_stream.max_abs_value() == pytest.approx(3.0)

    def test_max_abs_value_of_empty_stream(self):
        assert MultiAspectStream([]).max_abs_value() == 0.0
