"""Property-based tests for :class:`MultiAspectStream` slicing invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stream.events import StreamRecord
from repro.stream.stream import MultiAspectStream


@st.composite
def streams(draw):
    """Small random streams over a 4 x 3 categorical space."""
    n_records = draw(st.integers(min_value=1, max_value=30))
    records = []
    time = 0.0
    for _ in range(n_records):
        time += draw(st.integers(min_value=0, max_value=5))
        records.append(
            StreamRecord(
                indices=(
                    draw(st.integers(min_value=0, max_value=3)),
                    draw(st.integers(min_value=0, max_value=2)),
                ),
                value=float(draw(st.integers(min_value=1, max_value=9))),
                time=float(time),
            )
        )
    return MultiAspectStream(records, mode_sizes=(4, 3))


@given(streams(), st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40))
@settings(max_examples=60, deadline=None)
def test_between_partitions_value_total(stream, split_a, split_b):
    """Splitting the time axis at any point partitions the total value."""
    low, high = sorted((float(split_a), float(split_b)))
    before = stream.between(float("-inf"), low)
    middle = stream.between(low, high)
    after = stream.between(high, float("inf"))
    assert len(before) + len(middle) + len(after) == len(stream)
    total = before.value_total() + middle.value_total() + after.value_total()
    assert total == pytest.approx(stream.value_total())


@given(streams(), st.integers(min_value=0, max_value=35))
@settings(max_examples=60, deadline=None)
def test_head_is_a_chronological_prefix(stream, n_records):
    head = stream.head(n_records)
    assert len(head) == min(n_records, len(stream))
    assert head.records == stream.records[: len(head)]
    if len(head) > 0:
        assert head.end_time <= stream.end_time


@given(streams())
@settings(max_examples=40, deadline=None)
def test_max_abs_value_bounds_every_record(stream):
    bound = stream.max_abs_value()
    assert all(abs(record.value) <= bound for record in stream)
