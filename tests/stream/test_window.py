"""Unit tests for :mod:`repro.stream.window`."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, ShapeError
from repro.stream.deltas import Delta
from repro.stream.events import EventKind, StreamRecord, WindowEvent
from repro.stream.window import TensorWindow, WindowConfig


class TestWindowConfig:
    def test_properties(self):
        config = WindowConfig(mode_sizes=(4, 3), window_length=5, period=10.0)
        assert config.shape == (4, 3, 5)
        assert config.order == 3
        assert config.time_mode == 2
        assert config.span == 50.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode_sizes": (), "window_length": 5, "period": 1.0},
            {"mode_sizes": (0, 3), "window_length": 5, "period": 1.0},
            {"mode_sizes": (3,), "window_length": 0, "period": 1.0},
            {"mode_sizes": (3,), "window_length": 5, "period": 0.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WindowConfig(**kwargs)


class TestTensorWindow:
    @pytest.fixture
    def window(self) -> TensorWindow:
        return TensorWindow(WindowConfig(mode_sizes=(3, 2), window_length=4, period=5.0))

    def test_initially_empty(self, window):
        assert window.nnz == 0
        assert window.norm() == 0.0
        assert window.newest_unit_index == 3

    def test_apply_arrival_delta(self, window):
        record = StreamRecord((1, 0), 2.0, 0.0)
        event = WindowEvent(0.0, 0, EventKind.ARRIVAL, record, 0)
        window.apply_delta(Delta.from_event(event, 4))
        assert window.tensor.get((1, 0, 3)) == 2.0
        assert window.n_deltas_applied == 1

    def test_apply_full_record_lifecycle_conserves_nothing(self, window):
        """Arrival + all shifts + expiry leave the window empty again."""
        record = StreamRecord((2, 1), 1.5, 0.0)
        for step in range(0, 5):
            event = WindowEvent(
                step * 5.0, step, WindowEvent.kind_for_step(step, 4), record, step
            )
            window.apply_delta(Delta.from_event(event, 4))
        assert window.nnz == 0
        assert window.total() == pytest.approx(0.0)

    def test_add_entry_and_unit_queries(self, window):
        window.add_entry((0, 1), unit=2, value=3.0)
        window.add_entry((1, 1), unit=2, value=1.0)
        window.add_entry((1, 0), unit=0, value=2.0)
        assert window.unit_nnz(2) == 2
        assert window.unit_nnz(0) == 1
        assert window.unit_nnz(3) == 0
        assert dict(window.unit_entries(2)) == {(0, 1, 2): 3.0, (1, 1, 2): 1.0}
        assert window.total() == pytest.approx(6.0)

    def test_unit_out_of_range_rejected(self, window):
        with pytest.raises(ShapeError):
            list(window.unit_entries(4))

    def test_bad_delta_coordinate_rejected(self, window):
        record = StreamRecord((1,), 2.0, 0.0)  # only one categorical index
        event = WindowEvent(0.0, 0, EventKind.ARRIVAL, record, 0)
        with pytest.raises(ShapeError):
            window.apply_delta(Delta.from_event(event, 4))

    def test_copy_is_independent(self, window):
        window.add_entry((0, 0), 0, 1.0)
        clone = window.copy()
        clone.add_entry((0, 0), 0, 1.0)
        assert window.tensor.get((0, 0, 0)) == 1.0
        assert clone.tensor.get((0, 0, 0)) == 2.0

    def test_clear(self, window):
        window.add_entry((0, 0), 0, 1.0)
        window.clear()
        assert window.nnz == 0
        assert window.n_deltas_applied == 0
