"""Unit tests for :mod:`repro.tensor.kruskal`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


@pytest.fixture
def kruskal(rng) -> KruskalTensor:
    factors = random_factors((4, 5, 3), rank=3, rng=rng, nonnegative=False)
    weights = rng.uniform(0.5, 2.0, size=3)
    return KruskalTensor(factors, weights)


class TestConstruction:
    def test_shape_rank_order(self, kruskal):
        assert kruskal.shape == (4, 5, 3)
        assert kruskal.rank == 3
        assert kruskal.order == 3
        assert kruskal.n_parameters == 3 * (4 + 5 + 3)

    def test_default_weights_are_ones(self, rng):
        factors = random_factors((3, 3), rank=2, rng=rng)
        np.testing.assert_allclose(KruskalTensor(factors).weights, [1.0, 1.0])

    def test_inconsistent_rank_rejected(self, rng):
        with pytest.raises(RankError):
            KruskalTensor([rng.normal(size=(3, 2)), rng.normal(size=(3, 3))])

    def test_bad_weight_length_rejected(self, rng):
        factors = random_factors((3, 3), rank=2, rng=rng)
        with pytest.raises(RankError):
            KruskalTensor(factors, weights=np.ones(3))

    def test_vector_factor_rejected(self):
        with pytest.raises(ShapeError):
            KruskalTensor([np.ones(3)])

    def test_no_factors_rejected(self):
        with pytest.raises(ShapeError):
            KruskalTensor([])

    def test_factors_are_copied(self, rng):
        factor = rng.normal(size=(3, 2))
        kruskal = KruskalTensor([factor, rng.normal(size=(4, 2))])
        factor[0, 0] = 99.0
        assert kruskal.factors[0][0, 0] != 99.0

    def test_copy_is_deep(self, kruskal):
        clone = kruskal.copy()
        clone.factors[0][0, 0] += 1.0
        clone.weights[0] += 1.0
        assert kruskal.factors[0][0, 0] != clone.factors[0][0, 0]
        assert kruskal.weights[0] != clone.weights[0]


class TestReconstruction:
    def test_value_at_matches_dense(self, kruskal, rng):
        dense = kruskal.to_dense()
        for _ in range(10):
            coordinate = tuple(int(rng.integers(n)) for n in kruskal.shape)
            assert kruskal.value_at(coordinate) == pytest.approx(dense[coordinate])

    def test_values_at_matches_value_at(self, kruskal, rng):
        coordinates = np.column_stack(
            [rng.integers(0, n, size=7) for n in kruskal.shape]
        )
        batch = kruskal.values_at(coordinates)
        for row, expected in zip(coordinates, batch):
            assert kruskal.value_at(tuple(row)) == pytest.approx(expected)

    def test_values_at_empty(self, kruskal):
        assert kruskal.values_at(np.empty((0, 3))).shape == (0,)

    def test_value_at_wrong_length_rejected(self, kruskal):
        with pytest.raises(ShapeError):
            kruskal.value_at((0, 0))

    def test_to_dense_uses_weights(self, rng):
        factors = random_factors((3, 4), rank=2, rng=rng, nonnegative=False)
        weights = np.array([2.0, 0.5])
        weighted = KruskalTensor(factors, weights).to_dense()
        manual = sum(
            weights[r] * np.outer(factors[0][:, r], factors[1][:, r]) for r in range(2)
        )
        np.testing.assert_allclose(weighted, manual, atol=1e-12)


class TestNorms:
    def test_squared_norm_matches_dense(self, kruskal):
        dense = kruskal.to_dense()
        assert kruskal.squared_norm() == pytest.approx(np.sum(dense**2))
        assert kruskal.norm() == pytest.approx(np.linalg.norm(dense))

    def test_inner_with_sparse_matches_dense(self, kruskal, rng):
        sparse = SparseTensor(kruskal.shape)
        for _ in range(10):
            coordinate = tuple(int(rng.integers(n)) for n in kruskal.shape)
            sparse.set(coordinate, float(rng.normal()))
        expected = float(np.sum(kruskal.to_dense() * sparse.to_dense()))
        assert kruskal.inner_with_sparse(sparse) == pytest.approx(expected)

    def test_inner_shape_mismatch_rejected(self, kruskal):
        with pytest.raises(ShapeError):
            kruskal.inner_with_sparse(SparseTensor((2, 2)))

    def test_residual_matches_dense(self, kruskal, rng):
        sparse = SparseTensor(kruskal.shape)
        for _ in range(15):
            coordinate = tuple(int(rng.integers(n)) for n in kruskal.shape)
            sparse.set(coordinate, float(rng.uniform(0.5, 2.0)))
        expected = float(np.sum((sparse.to_dense() - kruskal.to_dense()) ** 2))
        assert kruskal.residual_squared_norm(sparse) == pytest.approx(expected)


class TestFitness:
    def test_perfect_fitness_for_own_reconstruction(self, rng):
        factors = random_factors((3, 4, 2), rank=2, rng=rng)
        kruskal = KruskalTensor(factors)
        sparse = SparseTensor.from_dense(kruskal.to_dense())
        assert kruskal.fitness(sparse) == pytest.approx(1.0, abs=1e-9)

    def test_zero_decomposition_has_zero_fitness(self, small_tensor):
        zeros = KruskalTensor(
            [np.zeros((n, 2)) for n in small_tensor.shape]
        )
        assert zeros.fitness(small_tensor) == pytest.approx(0.0)

    def test_fitness_of_empty_tensor(self, rng):
        factors = random_factors((3, 3), rank=2, rng=rng)
        empty = SparseTensor((3, 3))
        assert KruskalTensor(factors).fitness(empty) == float("-inf")
        zeros = KruskalTensor([np.zeros((3, 2)), np.zeros((3, 2))])
        assert zeros.fitness(empty) == 1.0


class TestNormalization:
    def test_normalize_preserves_reconstruction(self, kruskal):
        normalized = kruskal.normalize()
        np.testing.assert_allclose(
            normalized.to_dense(), kruskal.to_dense(), atol=1e-10
        )
        for factor in normalized.factors:
            np.testing.assert_allclose(
                np.linalg.norm(factor, axis=0), np.ones(kruskal.rank)
            )

    def test_absorb_weights_preserves_reconstruction(self, kruskal):
        absorbed = kruskal.absorb_weights()
        np.testing.assert_allclose(absorbed.weights, np.ones(kruskal.rank))
        np.testing.assert_allclose(
            absorbed.to_dense(), kruskal.to_dense(), atol=1e-10
        )
