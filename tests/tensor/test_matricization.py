"""Unit tests for :mod:`repro.tensor.matricization`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor.kruskal import KruskalTensor
from repro.tensor.matricization import (
    column_of,
    fold,
    kr_order,
    unfold_dense,
    unfold_sparse,
)
from repro.tensor.products import khatri_rao_all
from repro.tensor.random import random_factors
from repro.tensor.sparse import SparseTensor


class TestDenseUnfolding:
    def test_unfold_fold_roundtrip(self, rng):
        tensor = rng.normal(size=(3, 4, 5))
        for mode in range(3):
            unfolded = unfold_dense(tensor, mode)
            assert unfolded.shape[0] == tensor.shape[mode]
            np.testing.assert_allclose(fold(unfolded, mode, tensor.shape), tensor)

    def test_unfolding_matches_cp_identity(self, rng):
        # [[A, B, C]]_(m) == A(m) @ khatri_rao(reversed others).T
        factors = random_factors((3, 4, 5), rank=2, rng=rng, nonnegative=False)
        dense = KruskalTensor(factors).to_dense()
        for mode in range(3):
            expected = factors[mode] @ khatri_rao_all(
                [factors[m] for m in kr_order(3, mode)]
            ).T
            np.testing.assert_allclose(unfold_dense(dense, mode), expected, atol=1e-10)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ShapeError):
            unfold_dense(np.zeros((2, 2)), 2)
        with pytest.raises(ShapeError):
            fold(np.zeros((2, 2)), 5, (2, 2))


class TestSparseUnfolding:
    def test_matches_dense_unfolding(self, small_tensor):
        dense = small_tensor.to_dense()
        for mode in range(small_tensor.order):
            sparse_unfolded = unfold_sparse(small_tensor, mode).toarray()
            np.testing.assert_allclose(sparse_unfolded, unfold_dense(dense, mode))

    def test_empty_tensor(self):
        unfolded = unfold_sparse(SparseTensor((2, 3, 4)), 1)
        assert unfolded.shape == (3, 8)
        assert unfolded.nnz == 0

    def test_invalid_mode_rejected(self, small_tensor):
        with pytest.raises(ShapeError):
            unfold_sparse(small_tensor, 3)

    def test_column_of_matches_dense_layout(self, rng):
        shape = (3, 4, 5)
        dense = rng.normal(size=shape)
        for mode in range(3):
            unfolded = unfold_dense(dense, mode)
            for _ in range(10):
                coordinate = tuple(int(rng.integers(n)) for n in shape)
                column = column_of(coordinate, shape, mode)
                assert unfolded[coordinate[mode], column] == pytest.approx(
                    dense[coordinate]
                )


class TestKrOrder:
    def test_excludes_mode_and_descends(self):
        assert kr_order(4, 1) == [3, 2, 0]
        assert kr_order(3, 2) == [1, 0]
        assert kr_order(2, 0) == [1]
