"""Unit tests for :mod:`repro.tensor.products`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tensor.products import (
    gram,
    hadamard,
    hadamard_all,
    hadamard_of_grams,
    khatri_rao,
    khatri_rao_all,
    outer,
)


class TestHadamard:
    def test_elementwise_product(self, rng):
        left = rng.normal(size=(4, 3))
        right = rng.normal(size=(4, 3))
        np.testing.assert_allclose(hadamard(left, right), left * right)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            hadamard(np.ones((2, 2)), np.ones((3, 2)))

    def test_hadamard_all_of_three(self, rng):
        matrices = [rng.normal(size=(3, 3)) for _ in range(3)]
        expected = matrices[0] * matrices[1] * matrices[2]
        np.testing.assert_allclose(hadamard_all(matrices), expected)

    def test_hadamard_all_single(self, rng):
        matrix = rng.normal(size=(2, 2))
        np.testing.assert_allclose(hadamard_all([matrix]), matrix)

    def test_hadamard_all_empty_rejected(self):
        with pytest.raises(ShapeError):
            hadamard_all([])


class TestKhatriRao:
    def test_columns_are_kronecker_products(self, rng):
        left = rng.normal(size=(3, 4))
        right = rng.normal(size=(5, 4))
        result = khatri_rao(left, right)
        assert result.shape == (15, 4)
        for column in range(4):
            np.testing.assert_allclose(
                result[:, column], np.kron(left[:, column], right[:, column])
            )

    def test_column_count_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao(np.ones((2, 3)), np.ones((2, 4)))

    def test_vector_input_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao(np.ones(3), np.ones((2, 3)))

    def test_khatri_rao_all_is_left_associative(self, rng):
        a, b, c = (rng.normal(size=(n, 2)) for n in (2, 3, 4))
        np.testing.assert_allclose(
            khatri_rao_all([a, b, c]), khatri_rao(khatri_rao(a, b), c)
        )

    def test_khatri_rao_all_empty_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao_all([])


class TestOuter:
    def test_outer_of_three_vectors(self, rng):
        a, b, c = rng.normal(size=3), rng.normal(size=4), rng.normal(size=2)
        result = outer([a, b, c])
        assert result.shape == (3, 4, 2)
        np.testing.assert_allclose(result, np.einsum("i,j,k->ijk", a, b, c))

    def test_outer_single_vector(self):
        np.testing.assert_allclose(outer([np.array([1.0, 2.0])]), [1.0, 2.0])

    def test_outer_rejects_matrices(self):
        with pytest.raises(ShapeError):
            outer([np.ones((2, 2))])

    def test_outer_empty_rejected(self):
        with pytest.raises(ShapeError):
            outer([])


class TestGrams:
    def test_gram(self, rng):
        matrix = rng.normal(size=(5, 3))
        np.testing.assert_allclose(gram(matrix), matrix.T @ matrix)

    def test_gram_rejects_vectors(self):
        with pytest.raises(ShapeError):
            gram(np.ones(4))

    def test_hadamard_of_grams_skip(self, rng):
        factors = [rng.normal(size=(n, 3)) for n in (4, 5, 6)]
        expected = (factors[0].T @ factors[0]) * (factors[2].T @ factors[2])
        np.testing.assert_allclose(hadamard_of_grams(factors, skip=1), expected)

    def test_hadamard_of_grams_no_skip(self, rng):
        factors = [rng.normal(size=(n, 2)) for n in (3, 4)]
        expected = (factors[0].T @ factors[0]) * (factors[1].T @ factors[1])
        np.testing.assert_allclose(hadamard_of_grams(factors), expected)

    def test_hadamard_of_grams_all_skipped_rejected(self):
        with pytest.raises(ShapeError):
            hadamard_of_grams([np.ones((2, 2))], skip=0)
