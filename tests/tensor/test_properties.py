"""Property-based tests (hypothesis) for the tensor substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.kruskal import KruskalTensor
from repro.tensor.products import khatri_rao
from repro.tensor.sparse import SparseTensor

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
shapes = st.lists(st.integers(min_value=1, max_value=5), min_size=2, max_size=4).map(
    tuple
)
values = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


@st.composite
def tensor_and_operations(draw):
    """A shape plus a sequence of (coordinate, delta) add operations."""
    shape = draw(shapes)
    n_operations = draw(st.integers(min_value=0, max_value=25))
    operations = []
    for _ in range(n_operations):
        coordinate = tuple(
            draw(st.integers(min_value=0, max_value=length - 1)) for length in shape
        )
        operations.append((coordinate, draw(values)))
    return shape, operations


# ----------------------------------------------------------------------
# SparseTensor invariants
# ----------------------------------------------------------------------
@given(tensor_and_operations())
@settings(max_examples=60, deadline=None)
def test_sparse_tensor_matches_dense_reference(case):
    """Applying adds keeps the sparse tensor equal to a dense reference array."""
    shape, operations = case
    tensor = SparseTensor(shape)
    reference = np.zeros(shape)
    for coordinate, delta in operations:
        tensor.add(coordinate, delta)
        reference[coordinate] += delta
    np.testing.assert_allclose(tensor.to_dense(), reference, atol=1e-9)
    assert tensor.norm() == pytest.approx(np.linalg.norm(reference), abs=1e-9)


@given(tensor_and_operations())
@settings(max_examples=60, deadline=None)
def test_mode_index_consistent_with_entries(case):
    """The per-mode inverted index exactly partitions the non-zero set."""
    shape, operations = case
    tensor = SparseTensor(shape)
    for coordinate, delta in operations:
        tensor.add(coordinate, delta)
    coordinates = set(tensor.coordinates())
    for mode in range(len(shape)):
        listed = set()
        for index in range(shape[mode]):
            slice_coordinates = {c for c, _ in tensor.mode_slice(mode, index)}
            assert all(c[mode] == index for c in slice_coordinates)
            assert len(slice_coordinates) == tensor.degree(mode, index)
            listed |= slice_coordinates
        assert listed == coordinates


# ----------------------------------------------------------------------
# Product identities
# ----------------------------------------------------------------------
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_khatri_rao_gram_identity(rows_left, rows_right, rank, seed):
    """(A ⊙ B)'(A ⊙ B) == (A'A) * (B'B)  — Eq. (8) of the paper."""
    rng = np.random.default_rng(seed)
    left = rng.normal(size=(rows_left, rank))
    right = rng.normal(size=(rows_right, rank))
    kr = khatri_rao(left, right)
    np.testing.assert_allclose(
        kr.T @ kr, (left.T @ left) * (right.T @ right), atol=1e-8
    )


@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_kruskal_norm_identity(n_rows, n_cols, rank, seed):
    """The Gram-based Kruskal norm equals the dense Frobenius norm."""
    rng = np.random.default_rng(seed)
    factors = [rng.normal(size=(n_rows, rank)), rng.normal(size=(n_cols, rank))]
    weights = rng.uniform(0.1, 2.0, size=rank)
    kruskal = KruskalTensor(factors, weights)
    assert kruskal.norm() == pytest.approx(
        np.linalg.norm(kruskal.to_dense()), rel=1e-8, abs=1e-8
    )

