"""Unit tests for :mod:`repro.tensor.random`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import RankError, ShapeError
from repro.tensor.random import (
    random_factors,
    random_kruskal,
    random_low_rank_sparse_tensor,
    random_sparse_tensor,
)


class TestRandomFactors:
    def test_shapes(self, rng):
        factors = random_factors((3, 5, 2), rank=4, rng=rng)
        assert [f.shape for f in factors] == [(3, 4), (5, 4), (2, 4)]

    def test_nonnegative_by_default(self, rng):
        factors = random_factors((10, 10), rank=3, rng=rng)
        assert all((f >= 0).all() for f in factors)

    def test_signed_when_requested(self, rng):
        factors = random_factors((50, 50), rank=3, rng=rng, nonnegative=False)
        assert any((f < 0).any() for f in factors)

    def test_deterministic_with_seed(self):
        a = random_factors((4, 4), 2, rng=np.random.default_rng(1))
        b = random_factors((4, 4), 2, rng=np.random.default_rng(1))
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_invalid_rank_rejected(self, rng):
        with pytest.raises(RankError):
            random_factors((3, 3), rank=0, rng=rng)

    def test_invalid_shape_rejected(self, rng):
        with pytest.raises(ShapeError):
            random_factors((3, 0), rank=2, rng=rng)


class TestRandomKruskal:
    def test_shape_and_rank(self, rng):
        kruskal = random_kruskal((3, 4), rank=2, rng=rng)
        assert kruskal.shape == (3, 4)
        assert kruskal.rank == 2


class TestRandomSparseTensor:
    def test_density_is_respected(self, rng):
        tensor = random_sparse_tensor((20, 20), density=0.1, rng=rng)
        assert 0 < tensor.nnz <= 40

    def test_zero_density(self, rng):
        assert random_sparse_tensor((5, 5), density=0.0, rng=rng).nnz == 0

    def test_invalid_density_rejected(self, rng):
        with pytest.raises(ShapeError):
            random_sparse_tensor((5, 5), density=1.5, rng=rng)

    def test_values_in_range(self, rng):
        tensor = random_sparse_tensor(
            (10, 10), density=0.2, rng=rng, value_low=1.0, value_high=2.0
        )
        assert all(1.0 <= value <= 2.0 for _, value in tensor.items())


class TestLowRankSparseTensor:
    def test_returns_tensor_and_truth(self, rng):
        tensor, truth = random_low_rank_sparse_tensor(
            (8, 8, 4), rank=2, density=0.1, rng=rng, noise=0.0
        )
        assert tensor.shape == (8, 8, 4)
        assert truth.rank == 2
        # With zero noise every stored value equals the truth's reconstruction.
        for coordinate, value in tensor.items():
            assert value == pytest.approx(truth.value_at(coordinate), abs=1e-9)
