"""Unit tests for :mod:`repro.tensor.sparse`."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import IndexOutOfBoundsError, ShapeError
from repro.tensor.sparse import DROP_TOLERANCE, SparseTensor


class TestConstruction:
    def test_empty_tensor_has_no_nonzeros(self):
        tensor = SparseTensor((3, 4, 5))
        assert tensor.nnz == 0
        assert tensor.shape == (3, 4, 5)
        assert tensor.order == 3
        assert tensor.size == 60

    def test_initial_entries_are_stored(self):
        tensor = SparseTensor((2, 2), entries={(0, 1): 2.0, (1, 0): -1.5})
        assert tensor.get((0, 1)) == 2.0
        assert tensor.get((1, 0)) == -1.5
        assert tensor.nnz == 2

    def test_initial_near_zero_entries_are_dropped(self):
        tensor = SparseTensor((2, 2), entries={(0, 0): DROP_TOLERANCE / 2})
        assert tensor.nnz == 0

    def test_zero_mode_length_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor((3, 0))

    def test_empty_shape_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor(())

    def test_density(self):
        tensor = SparseTensor((2, 5), entries={(0, 0): 1.0, (1, 4): 1.0})
        assert tensor.density == pytest.approx(0.2)


class TestEntryAccess:
    def test_get_missing_entry_returns_zero(self):
        tensor = SparseTensor((3, 3))
        assert tensor.get((2, 2)) == 0.0

    def test_getitem_setitem(self):
        tensor = SparseTensor((3, 3))
        tensor[1, 2] = 4.0
        assert tensor[1, 2] == 4.0

    def test_set_to_zero_removes_entry(self):
        tensor = SparseTensor((3, 3), entries={(1, 1): 2.0})
        tensor.set((1, 1), 0.0)
        assert tensor.nnz == 0
        assert (1, 1) not in set(tensor.coordinates())

    def test_add_accumulates(self):
        tensor = SparseTensor((3, 3))
        tensor.add((0, 0), 1.5)
        tensor.add((0, 0), 2.5)
        assert tensor.get((0, 0)) == pytest.approx(4.0)

    def test_add_then_subtract_removes_entry(self):
        tensor = SparseTensor((3, 3))
        tensor.add((0, 1), 3.0)
        tensor.add((0, 1), -3.0)
        assert tensor.nnz == 0
        assert tensor.degree(0, 0) == 0
        assert tensor.degree(1, 1) == 0

    def test_wrong_coordinate_length_rejected(self):
        tensor = SparseTensor((3, 3))
        with pytest.raises(ShapeError):
            tensor.get((1, 2, 3))

    def test_out_of_bounds_rejected(self):
        tensor = SparseTensor((3, 3))
        with pytest.raises(IndexOutOfBoundsError):
            tensor.set((3, 0), 1.0)
        with pytest.raises(IndexOutOfBoundsError):
            tensor.set((0, -1), 1.0)


class TestModeIndex:
    def test_mode_slice_returns_matching_entries(self):
        tensor = SparseTensor(
            (3, 3), entries={(0, 0): 1.0, (0, 2): 2.0, (1, 1): 3.0}
        )
        entries = dict(tensor.mode_slice(0, 0))
        assert entries == {(0, 0): 1.0, (0, 2): 2.0}

    def test_degree_counts_nonzeros_per_index(self):
        tensor = SparseTensor(
            (3, 3), entries={(0, 0): 1.0, (0, 2): 2.0, (1, 2): 3.0}
        )
        assert tensor.degree(0, 0) == 2
        assert tensor.degree(0, 1) == 1
        assert tensor.degree(0, 2) == 0
        assert tensor.degree(1, 1) == 0
        assert tensor.degree(1, 2) == 2

    def test_mode_indices(self):
        tensor = SparseTensor((3, 4), entries={(0, 1): 1.0, (2, 1): 1.0})
        assert tensor.mode_indices(0) == {0, 2}
        assert tensor.mode_indices(1) == {1}

    def test_mode_index_updated_on_removal(self):
        tensor = SparseTensor((3, 3), entries={(0, 0): 1.0})
        tensor.set((0, 0), 0.0)
        assert tensor.mode_indices(0) == set()

    def test_invalid_mode_rejected(self):
        tensor = SparseTensor((3, 3))
        with pytest.raises(ShapeError):
            tensor.degree(2, 0)


class TestReductions:
    def test_norm_matches_dense(self, small_tensor):
        dense = small_tensor.to_dense()
        assert small_tensor.norm() == pytest.approx(np.linalg.norm(dense))
        assert small_tensor.squared_norm() == pytest.approx(np.sum(dense**2))

    def test_total(self):
        tensor = SparseTensor((2, 2), entries={(0, 0): 1.5, (1, 1): 2.5})
        assert tensor.total() == pytest.approx(4.0)

    def test_norm_of_empty_tensor_is_zero(self):
        assert SparseTensor((4, 4)).norm() == 0.0

    def test_inner_product_matches_dense(self, rng):
        left = SparseTensor((4, 4))
        right = SparseTensor((4, 4))
        for _ in range(8):
            left.set((int(rng.integers(4)), int(rng.integers(4))), float(rng.normal()))
            right.set((int(rng.integers(4)), int(rng.integers(4))), float(rng.normal()))
        expected = float(np.sum(left.to_dense() * right.to_dense()))
        assert left.inner(right) == pytest.approx(expected)
        assert right.inner(left) == pytest.approx(expected)

    def test_inner_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor((2, 2)).inner(SparseTensor((2, 3)))


class TestGetBatch:
    def test_values_and_zeros(self):
        tensor = SparseTensor((3, 3), entries={(0, 1): 2.0, (2, 2): -1.5})
        coordinates = np.array([[0, 1], [1, 1], [2, 2]], dtype=np.int64)
        values = tensor.get_batch(coordinates)
        assert values.dtype == np.float64
        assert values.tolist() == [2.0, 0.0, -1.5]

    def test_matches_get(self, small_tensor, rng):
        coordinates = np.column_stack(
            [rng.integers(0, n, size=50) for n in small_tensor.shape]
        )
        values = small_tensor.get_batch(coordinates)
        expected = [small_tensor.get(tuple(row)) for row in coordinates.tolist()]
        assert values.tolist() == expected

    def test_empty(self):
        tensor = SparseTensor((2, 2))
        assert tensor.get_batch(np.empty((0, 2), dtype=np.int64)).shape == (0,)

    def test_wrong_shape_rejected(self):
        tensor = SparseTensor((2, 2))
        with pytest.raises(ShapeError):
            tensor.get_batch(np.zeros((3, 3), dtype=np.int64))

    def test_out_of_bounds_rejected(self):
        tensor = SparseTensor((2, 2))
        with pytest.raises(IndexOutOfBoundsError):
            tensor.get_batch(np.array([[0, 2]], dtype=np.int64))
        with pytest.raises(IndexOutOfBoundsError):
            tensor.get_batch(np.array([[-1, 0]], dtype=np.int64))


class TestIncrementalSquaredNorm:
    def _exact(self, tensor: SparseTensor) -> float:
        return float(sum(value * value for _, value in tensor.items()))

    def test_churn_regression(self, rng):
        """Heavy add/remove/drop-tolerance traffic must not drift the norm.

        The squared norm is maintained incrementally (O(1) reads), so a long
        random mutation history — including exact cancellations and
        sub-tolerance snaps, the hostile cases for an accumulator — must stay
        within float round-off of a from-scratch recompute.
        """
        tensor = SparseTensor((5, 6, 4))
        coordinates = [
            (int(i), int(j), int(k))
            for i, j, k in zip(
                rng.integers(0, 5, size=3000),
                rng.integers(0, 6, size=3000),
                rng.integers(0, 4, size=3000),
            )
        ]
        for step, coordinate in enumerate(coordinates):
            action = step % 5
            if action == 0:
                tensor.add(coordinate, float(rng.normal(scale=10.0)))
            elif action == 1:
                tensor.set(coordinate, float(rng.normal(scale=0.1)))
            elif action == 2:
                # Exact cancellation: forces removal through the add path.
                tensor.add(coordinate, -tensor.get(coordinate))
            elif action == 3:
                # Sub-tolerance value: snapped to zero and dropped.
                tensor.set(coordinate, DROP_TOLERANCE / 3)
            else:
                tensor.add(coordinate, float(rng.normal()))
        assert tensor.nnz > 0
        assert tensor.squared_norm() == pytest.approx(
            self._exact(tensor), rel=1e-9, abs=1e-12
        )
        assert tensor.norm() == pytest.approx(
            math.sqrt(self._exact(tensor)), rel=1e-9, abs=1e-12
        )

    def test_add_batch_churn(self, rng):
        tensor = SparseTensor((4, 4))
        for _ in range(50):
            coordinates = [
                (int(i), int(j))
                for i, j in zip(rng.integers(0, 4, size=40), rng.integers(0, 4, size=40))
            ]
            values = rng.normal(size=40).tolist()
            # Fold in exact cancellations of existing entries.
            for coordinate, value in list(tensor.items())[:5]:
                coordinates.append(coordinate)
                values.append(-value)
            tensor.add_batch(coordinates, values)
        assert tensor.squared_norm() == pytest.approx(
            self._exact(tensor), rel=1e-9, abs=1e-12
        )

    def test_emptied_tensor_has_exactly_zero_norm(self):
        tensor = SparseTensor((2, 2))
        tensor.add((0, 0), 0.1)
        tensor.add((0, 1), 0.3)
        tensor.add((0, 0), -0.1)
        tensor.add((0, 1), -0.3)
        assert tensor.nnz == 0
        assert tensor.squared_norm() == 0.0
        assert tensor.norm() == 0.0

    def test_copy_preserves_norm(self):
        tensor = SparseTensor((2, 2), entries={(0, 0): 3.0, (1, 1): 4.0})
        assert tensor.copy().squared_norm() == tensor.squared_norm()

    def test_recompute_squared_norm_resets_to_exact(self, rng):
        tensor = SparseTensor((5, 5))
        for _ in range(500):
            coordinate = (int(rng.integers(0, 5)), int(rng.integers(0, 5)))
            tensor.add(coordinate, float(rng.normal(scale=100.0)))
        drift = tensor.recompute_squared_norm()
        # The reported drift is whatever the incremental value had wandered;
        # after the call the stored value is the exact compensated sum.
        assert abs(drift) <= 1e-6 * max(tensor.squared_norm(), 1.0)
        assert tensor.squared_norm() == math.fsum(
            value * value for _, value in tensor.items()
        )
        # Recomputing an already-exact value is a no-op.
        assert tensor.recompute_squared_norm() == 0.0

    def test_long_churn_drift_is_bounded_against_rescan(self, rng):
        """Long-churn property: incremental drift stays within an ulp budget.

        Simulates window-like traffic (paired add/subtract of the same float
        through shifting coordinates) for many thousands of mutations and
        bounds the incremental accumulator's drift against a full rescan —
        the guarantee checkpoint restore relies on being allowed to *reset*:
        drift is round-off-sized, never structural.
        """
        tensor = SparseTensor((7, 6, 5))
        live: list[tuple[tuple[int, int, int], float]] = []
        worst_relative_drift = 0.0
        for step in range(12_000):
            if live and step % 3 == 2:
                # Retire an old entry exactly (window shift/expiry pattern).
                coordinate, value = live.pop(int(rng.integers(0, len(live))))
                tensor.add(coordinate, -value)
            else:
                coordinate = (
                    int(rng.integers(0, 7)),
                    int(rng.integers(0, 6)),
                    int(rng.integers(0, 5)),
                )
                value = float(rng.exponential(scale=50.0)) + 1e-3
                tensor.add(coordinate, value)
                live.append((coordinate, value))
            if step % 1000 == 999:
                exact = math.fsum(value * value for _, value in tensor.items())
                drift = abs(tensor.squared_norm() - exact)
                worst_relative_drift = max(
                    worst_relative_drift, drift / max(exact, 1.0)
                )
        # Round-off-level, far below any fitness-affecting magnitude.
        assert worst_relative_drift < 1e-11
        # And a restore-style reset leaves the exact value behind.
        tensor.recompute_squared_norm()
        assert tensor.squared_norm() == math.fsum(
            value * value for _, value in tensor.items()
        )


class TestCooCache:
    def test_unmutated_tensor_returns_cached_arrays(self):
        tensor = SparseTensor((2, 3), entries={(0, 1): 2.0, (1, 2): -1.0})
        first = tensor.to_coo_arrays()
        second = tensor.to_coo_arrays()
        assert first[0] is second[0]
        assert first[1] is second[1]

    def test_mutation_invalidates_cache(self):
        tensor = SparseTensor((2, 3), entries={(0, 1): 2.0})
        indices, values = tensor.to_coo_arrays()
        tensor.add((1, 2), 5.0)
        new_indices, new_values = tensor.to_coo_arrays()
        assert new_indices is not indices
        assert new_values.shape == (2,)
        rebuilt = {
            tuple(index): value for index, value in zip(new_indices, new_values)
        }
        assert rebuilt == {(0, 1): 2.0, (1, 2): 5.0}

    def test_every_mutation_path_bumps_version(self):
        tensor = SparseTensor((2, 2))
        version = tensor.version
        tensor.set((0, 0), 1.0)
        assert tensor.version > version
        version = tensor.version
        tensor.add((0, 1), 2.0)
        assert tensor.version > version
        version = tensor.version
        tensor.add_batch([(1, 1)], [3.0])
        assert tensor.version > version
        version = tensor.version
        tensor.set((0, 0), 0.0)  # removal path
        assert tensor.version > version

    def test_cached_empty_tensor(self):
        tensor = SparseTensor((2, 3))
        indices, values = tensor.to_coo_arrays()
        assert indices.shape == (0, 2)
        assert tensor.to_coo_arrays()[0] is indices
        tensor.set((1, 1), 4.0)
        indices, values = tensor.to_coo_arrays()
        assert indices.shape == (1, 2)
        assert values.tolist() == [4.0]

    def test_copy_carries_version_forward(self):
        """Regression: ``copy()`` used to reset the clone's version to 0.

        A caller holding a ``(tensor, version)`` pair from the original
        could then false-match the clone's COO cache once the clone re-used
        the same version numbers at *different* content.  The clone's
        counter must continue from the original's.
        """
        tensor = SparseTensor((3, 3))
        tensor.set((0, 0), 1.0)
        tensor.set((1, 1), 2.0)
        observed_version = tensor.version
        clone = tensor.copy()
        assert clone.version == observed_version
        # A mutation on the clone can never land back on an already-observed
        # version number.
        clone.set((2, 2), 3.0)
        assert clone.version > observed_version

    def test_copy_shares_valid_coo_cache(self):
        tensor = SparseTensor((3, 3), entries={(0, 1): 2.0, (2, 2): -1.0})
        indices, values = tensor.to_coo_arrays()
        clone = tensor.copy()
        # Same version, same content: the clone may serve the cached arrays.
        clone_indices, clone_values = clone.to_coo_arrays()
        assert clone_indices is indices and clone_values is values
        clone.add((1, 1), 4.0)
        fresh_indices, _ = clone.to_coo_arrays()
        assert fresh_indices is not indices
        # The original is unaffected by the clone's mutation.
        assert tensor.to_coo_arrays()[0] is indices


class TestFromCoo:
    def test_round_trip_preserves_storage_order(self, small_tensor):
        indices, values = small_tensor.to_coo_arrays()
        rebuilt = SparseTensor.from_coo(
            small_tensor.shape, indices, values, version=small_tensor.version
        )
        assert rebuilt.version == small_tensor.version
        assert list(rebuilt.items()) == list(small_tensor.items())
        rebuilt_indices, rebuilt_values = rebuilt.to_coo_arrays()
        assert rebuilt_indices.tolist() == indices.tolist()
        assert rebuilt_values.tolist() == values.tolist()
        # Slice enumeration order is reproduced exactly, not just as a set.
        for mode in range(small_tensor.order):
            for index in small_tensor.mode_indices(mode):
                assert list(rebuilt.mode_slice(mode, index)) == list(
                    small_tensor.mode_slice(mode, index)
                )

    def test_squared_norm_is_recomputed_exactly(self, small_tensor):
        indices, values = small_tensor.to_coo_arrays()
        rebuilt = SparseTensor.from_coo(small_tensor.shape, indices, values)
        assert rebuilt.squared_norm() == math.fsum(
            value * value for _, value in small_tensor.items()
        )

    def test_empty_round_trip(self):
        tensor = SparseTensor((2, 3))
        rebuilt = SparseTensor.from_coo(
            tensor.shape, *tensor.to_coo_arrays(), version=7
        )
        assert rebuilt.nnz == 0
        assert rebuilt.version == 7
        assert rebuilt.squared_norm() == 0.0

    def test_rejects_bad_input(self):
        with pytest.raises(ShapeError):
            SparseTensor.from_coo((2, 2), np.zeros((1, 3), dtype=np.int64), [1.0])
        with pytest.raises(ShapeError):
            SparseTensor.from_coo(
                (2, 2), np.zeros((2, 2), dtype=np.int64), [1.0]
            )
        with pytest.raises(ShapeError, match="duplicate"):
            SparseTensor.from_coo(
                (2, 2),
                np.array([[0, 0], [0, 0]], dtype=np.int64),
                [1.0, 2.0],
            )
        with pytest.raises(IndexOutOfBoundsError):
            SparseTensor.from_coo(
                (2, 2), np.array([[0, 5]], dtype=np.int64), [1.0]
            )


class TestConversions:
    def test_dense_roundtrip(self, small_tensor):
        dense = small_tensor.to_dense()
        rebuilt = SparseTensor.from_dense(dense)
        assert rebuilt.allclose(small_tensor)

    def test_to_coo_arrays(self):
        tensor = SparseTensor((2, 3), entries={(0, 1): 2.0, (1, 2): -1.0})
        indices, values = tensor.to_coo_arrays()
        assert indices.shape == (2, 2)
        assert values.shape == (2,)
        rebuilt = {tuple(index): value for index, value in zip(indices, values)}
        assert rebuilt == {(0, 1): 2.0, (1, 2): -1.0}

    def test_to_coo_arrays_empty(self):
        indices, values = SparseTensor((2, 3)).to_coo_arrays()
        assert indices.shape == (0, 2)
        assert values.shape == (0,)

    def test_copy_is_independent(self):
        tensor = SparseTensor((2, 2), entries={(0, 0): 1.0})
        clone = tensor.copy()
        clone.set((0, 0), 5.0)
        clone.set((1, 1), 2.0)
        assert tensor.get((0, 0)) == 1.0
        assert tensor.nnz == 1
        assert clone.nnz == 2

    def test_allclose_detects_difference(self):
        left = SparseTensor((2, 2), entries={(0, 0): 1.0})
        right = SparseTensor((2, 2), entries={(0, 0): 1.0 + 1e-3})
        assert not left.allclose(right)
        assert left.allclose(right, atol=1e-2)

    def test_allclose_shape_mismatch(self):
        assert not SparseTensor((2, 2)).allclose(SparseTensor((2, 3)))


class TestIteration:
    def test_items_and_len(self):
        tensor = SparseTensor((3, 3), entries={(0, 0): 1.0, (1, 2): 2.0})
        assert len(tensor) == 2
        assert dict(tensor.items()) == {(0, 0): 1.0, (1, 2): 2.0}

    def test_mode_slice_snapshot_allows_mutation(self):
        tensor = SparseTensor((3, 3), entries={(0, 0): 1.0, (0, 1): 2.0})
        for coordinate, _ in tensor.mode_slice(0, 0):
            tensor.set(coordinate, 0.0)  # must not raise during iteration
        assert tensor.nnz == 0

    def test_float_nan_not_special_cased(self):
        tensor = SparseTensor((2, 2))
        tensor.set((0, 0), math.inf)
        assert math.isinf(tensor.get((0, 0)))
