"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"
        assert set(EXPERIMENTS) >= {"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_dataset_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--dataset", "imagenet"])


class TestTableCommands:
    def test_table2_lists_paper_datasets(self):
        output = run(["table2"])
        assert "Divvy Bikes" in output
        assert "New York Taxi" in output
        assert "Table II" in output

    def test_table3_lists_hyperparameters(self):
        output = run(["table3"])
        assert "Table III" in output
        assert "theta" in output
        assert "ride_austin" in output

    def test_main_prints_and_returns_zero(self, capsys):
        assert main(["table3"]) == 0
        captured = capsys.readouterr()
        assert "Table III" in captured.out


class TestExperimentCommand:
    def test_fig8_runs_at_tiny_scale(self):
        output = run(
            ["fig8", "--dataset", "chicago_crime", "--scale", "0.08",
             "--max-events", "120", "--seed", "1"]
        )
        assert "Fig. 8" in output
