"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run


class TestParser:
    def test_all_experiments_are_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table2"])
        assert args.experiment == "table2"
        assert set(EXPERIMENTS) >= {"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_dataset_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig4", "--dataset", "imagenet"])


class TestTableCommands:
    def test_table2_lists_paper_datasets(self):
        output = run(["table2"])
        assert "Divvy Bikes" in output
        assert "New York Taxi" in output
        assert "Table II" in output

    def test_table3_lists_hyperparameters(self):
        output = run(["table3"])
        assert "Table III" in output
        assert "theta" in output
        assert "ride_austin" in output

    def test_main_prints_and_returns_zero(self, capsys):
        assert main(["table3"]) == 0
        captured = capsys.readouterr()
        assert "Table III" in captured.out


class TestExperimentCommand:
    def test_fig8_runs_at_tiny_scale(self):
        output = run(
            ["fig8", "--dataset", "chicago_crime", "--scale", "0.08",
             "--max-events", "120", "--seed", "1"]
        )
        assert "Fig. 8" in output


class TestCheckpointResumeEndToEnd:
    def test_resume_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            ["fig4", "--checkpoint-dir", "/tmp/x", "--checkpoint-events",
             "100", "--resume"]
        )
        assert args.checkpoint_dir == "/tmp/x"
        assert args.checkpoint_events == 100
        assert args.resume is True

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(Exception, match="checkpoint_dir"):
            run(["fig4", "--resume", "--max-events", "10"])

    def test_fig4_resume_reproduces_uninterrupted_output(self, tmp_path):
        """Save at N/2, rerun with --resume to N: output equals one full run.

        Continuous methods continue exactly from the checkpoint; periodic
        baselines carry no checkpointable state and simply rerun in full, so
        the complete fig4 report (fitness series, summary table) must be
        identical to the uninterrupted run's.
        """
        base = ["fig4", "--dataset", "chicago_crime", "--scale", "0.08",
                "--seed", "1"]
        # Hold the fitness cadence (max-events / n-checkpoints = 6) fixed
        # across the interrupted run and its continuation so the sample
        # points line up with the uninterrupted run's.
        uninterrupted = run(base + ["--max-events", "120",
                                    "--n-checkpoints", "20"])
        checkpoint_args = ["--checkpoint-dir", str(tmp_path)]
        run(base + ["--max-events", "60", "--n-checkpoints", "10",
                    "--checkpoint-events", "30", *checkpoint_args])
        for method in ("sns_rnd_plus", "sns_mat"):
            assert (tmp_path / method).is_dir()
        resumed = run(
            base + ["--max-events", "120", "--n-checkpoints", "20",
                    "--resume", *checkpoint_args]
        )
        assert resumed == uninterrupted
