"""Package-level tests: public API surface, version, and metadata."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version_is_exposed(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing name {name!r}"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.tensor",
            "repro.stream",
            "repro.als",
            "repro.core",
            "repro.baselines",
            "repro.data",
            "repro.metrics",
            "repro.anomaly",
            "repro.experiments",
            "repro.analysis",
            "repro.cli",
        ],
    )
    def test_subpackages_import_cleanly(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} is missing a module docstring"

    def test_algorithm_and_baseline_registries_are_disjoint(self):
        from repro.baselines import available_baselines
        from repro.core import available_algorithms

        assert not set(available_algorithms()) & set(available_baselines())

    def test_exceptions_share_base_class(self):
        from repro import exceptions

        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and name != "ReproError":
                if obj.__module__ == "repro.exceptions":
                    assert issubclass(obj, exceptions.ReproError)
